package sdcquery

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privacy3d/internal/dataset"
	"privacy3d/internal/dp"
	"privacy3d/internal/obs"
	"privacy3d/internal/sdc"
)

// maxBodyBytes caps request bodies on every POST surface; oversized bodies
// are refused with a clean 413 via http.MaxBytesReader.
const maxBodyBytes = 1 << 16

// DefaultBatchMax bounds the queries one POST /querybatch request may
// carry (HandlerConfig.BatchMax overrides). The cap exists for the same
// reason as maxBodyBytes: a single request must not be able to schedule
// unbounded work.
const DefaultBatchMax = 256

// HTTP front end for the protected statistical database, so the "owner sees
// every query" property of Section 3 is tangible: the /log endpoint IS the
// owner's complete view of the users' activity.
//
//	POST /query   — structured JSON query
//	POST /sql     — raw query text in the paper's dialect
//	POST /protect — mask the served microdata with a registered sdc method
//	               (owner-only: requires the configured bearer token)
//	GET  /log     — the owner's query log
//	GET  /metrics — request/outcome counters (when built with a Registry)
//
// /query and /sql are the untrusted-user surface and go through the
// server's inference controls. /protect is an owner operation — the caller
// chooses method, parameters and seed, so anyone allowed to call it can
// reconstruct the microdata (a degenerate parameterisation, or averaging
// seeded releases, returns the original values). It therefore requires
// HandlerConfig.OwnerToken and is disabled when no token is configured, so
// mounting the handler can never silently widen the user-facing API into a
// raw-data oracle. Released datasets additionally have Identifier-role
// columns stripped: direct identifiers never ship in a microdata release.
//
// All error responses are JSON objects {"error": "..."} with a correct
// status code: 400 for malformed input, 401/403 for missing or bad owner
// credentials, 405 for a wrong method (with an Allow header), 404 for an
// unknown path.

// QueryJSON is the structured wire format of /query.
type QueryJSON struct {
	Agg   string     `json:"agg"`  // COUNT, SUM or AVG
	Attr  string     `json:"attr"` // ignored for COUNT
	Where []CondJSON `json:"where"`
}

// CondJSON is one predicate condition on the wire. Str marks the condition
// as a string comparison even when S is empty — without it a predicate on
// the empty string is indistinguishable from one on the number 0. Clients
// sending a non-empty S may omit it.
type CondJSON struct {
	Col string  `json:"col"`
	Op  string  `json:"op"` // <, <=, >, >=, =, !=
	V   float64 `json:"v"`
	S   string  `json:"s"`
	Str bool    `json:"str,omitempty"`
}

// AnswerJSON is the response of /query and /sql. The numeric fields are
// deliberately NOT omitempty: a legitimate answer of 0 (COUNT over an empty
// query set, a perturbed value landing on 0) must serialize as an explicit
// "value":0, distinguishable from an absent field. The ε fields follow the
// same rule via pointers: they appear exactly when the answer was released
// under differential privacy, and a remaining budget of 0 (this query spent
// the last ε) serializes as an explicit "epsilon_remaining":0.
type AnswerJSON struct {
	Denied   bool    `json:"denied,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	Value    float64 `json:"value"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	Interval bool    `json:"interval,omitempty"`
	// Epsilon is the ε this answer debited; EpsilonRemaining the
	// principal's unspent ε after the debit. Both are nil unless the
	// server protection is DifferentialPrivacy.
	Epsilon          *float64 `json:"epsilon,omitempty"`
	EpsilonRemaining *float64 `json:"epsilon_remaining,omitempty"`
}

// BatchRequestJSON is the wire format of POST /querybatch: a list of
// structured queries answered against one pinned snapshot, with the
// answer-cache misses evaluated in one sharded column sweep.
type BatchRequestJSON struct {
	Queries []QueryJSON `json:"queries"`
}

// BatchItemJSON is one element of a /querybatch response: either the
// query's answer (same field contract as AnswerJSON) or its error. The
// batch degrades per item — one malformed or budget-refused query never
// fails its neighbours.
type BatchItemJSON struct {
	AnswerJSON
	Error string `json:"error,omitempty"`
}

// BatchResponseJSON carries the per-query results of POST /querybatch in
// request order.
type BatchResponseJSON struct {
	Answers []BatchItemJSON `json:"answers"`
}

// ProtectRequest is the wire format of POST /protect: the name of a
// registered sdc method plus its uniform parameters. The seed makes the
// release reproducible — the same request always yields the same bytes.
type ProtectRequest struct {
	Method  string             `json:"method"`
	Seed    uint64             `json:"seed"`
	Target  string             `json:"target,omitempty"`
	Columns []int              `json:"columns,omitempty"`
	Params  map[string]float64 `json:"params,omitempty"`
}

// ProtectResponse carries the uniform masking report and the released
// microdata as CSV.
type ProtectResponse struct {
	Report sdc.Report `json:"report"`
	CSV    string     `json:"csv"`
}

// errorJSON is the uniform error body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a flat struct to a ResponseWriter cannot fail in a way the
	// handler can still report; ignore the error deliberately.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorJSON{Error: msg})
}

// requireMethod answers 405 with an Allow header unless the request uses
// the given method.
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Sprintf("method %s not allowed; use %s", r.Method, method))
		return false
	}
	return true
}

// ToQuery converts the wire format into a Query.
func (q QueryJSON) ToQuery() (Query, error) {
	var out Query
	switch q.Agg {
	case "COUNT":
		out.Agg = Count
	case "SUM":
		out.Agg = Sum
	case "AVG":
		out.Agg = Avg
	default:
		return out, fmt.Errorf("sdcquery: unknown aggregate %q", q.Agg)
	}
	out.Attr = q.Attr
	for _, c := range q.Where {
		var op Op
		switch c.Op {
		case "<":
			op = Lt
		case "<=":
			op = Le
		case ">":
			op = Gt
		case ">=":
			op = Ge
		case "=", "==":
			op = Eq
		case "!=":
			op = Ne
		default:
			return out, fmt.Errorf("sdcquery: unknown operator %q", c.Op)
		}
		out.Where = append(out.Where, Cond{Col: c.Col, Op: op, V: c.V, S: c.S, Str: c.Str || c.S != ""})
	}
	return out, nil
}

// HandlerConfig configures the HTTP API surface.
type HandlerConfig struct {
	// Registry, when non-nil, receives answer-outcome counters and the
	// query-log depth gauge, and is mounted at GET /metrics.
	Registry *obs.Registry
	// OwnerToken is the bearer token required by POST /protect. When empty,
	// /protect is disabled (403): masked releases expose record-level
	// microdata and must never be reachable by the untrusted /query clients.
	OwnerToken string
	// RateLimit enables per-client token-bucket admission control on the
	// query surface (/query and /sql): each client is admitted RateLimit
	// requests/second sustained, with bursts up to RateBurst. Excess
	// requests are shed with 429 + Retry-After before touching the server.
	// Clients are identified by the principal header when present, else by
	// remote address. 0 disables admission control.
	RateLimit float64
	// RateBurst is the bucket depth; < 1 defaults to max(2·RateLimit, 1).
	RateBurst int
	// BatchMax caps the queries one POST /querybatch request may carry
	// (default DefaultBatchMax; negative disables the batch endpoint).
	// Admission control charges a batch once — the cap is what bounds the
	// work a single admitted request can schedule.
	BatchMax int
}

// NewHTTPHandler wraps a Server in the HTTP API without metrics and with
// /protect disabled.
func NewHTTPHandler(srv *Server) http.Handler { return NewHandler(srv, HandlerConfig{}) }

// NewObservedHandler wraps a Server in the HTTP API with metrics and with
// /protect disabled.
func NewObservedHandler(srv *Server, reg *obs.Registry) http.Handler {
	return NewHandler(srv, HandlerConfig{Registry: reg})
}

// authorizeOwner checks the request's Authorization header against the
// configured owner token in constant time. It writes the error response and
// returns false when the request is not authorized.
func authorizeOwner(w http.ResponseWriter, r *http.Request, token string) bool {
	if token == "" {
		writeError(w, http.StatusForbidden,
			"POST /protect is disabled: the server was started without an owner token")
		return false
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	// Compare digests so the comparison is constant-time regardless of
	// token length.
	want := sha256.Sum256([]byte(token))
	have := sha256.Sum256([]byte(got))
	if !ok || subtle.ConstantTimeCompare(want[:], have[:]) != 1 {
		w.Header().Set("WWW-Authenticate", `Bearer realm="owner"`)
		writeError(w, http.StatusUnauthorized,
			"POST /protect requires the owner bearer token")
		return false
	}
	return true
}

// PrincipalHeader carries the caller's budget-accounting identity on
// /query and /sql requests. It is required when the server protection is
// DifferentialPrivacy (400 without it) and ignored otherwise. In a real
// deployment the header would be set by an authenticating proxy; the
// server trusts it as-is.
const PrincipalHeader = "X-Privacy3D-Principal"

// epsilonRemainingHeader surfaces the principal's post-debit budget on DP
// answers and budget refusals, so clients can pace themselves without
// parsing bodies.
const epsilonRemainingHeader = "X-Privacy3D-Epsilon-Remaining"

// NewHandler wraps a Server in the HTTP API. When cfg.Registry is non-nil it
// counts answer outcomes (answered / denied / interval / error, plus the
// distinct budget-exhausted and no-principal refusals of differential
// privacy), exposes the query-log depth as a gauge — the tracker-relevant
// signal: how much history an auditor must reason over — and, under
// DifferentialPrivacy, one dp_epsilon_remaining{principal} gauge per
// principal seen. POST /protect is mounted but answers 403 unless
// cfg.OwnerToken is set.
func NewHandler(srv *Server, cfg HandlerConfig) http.Handler {
	reg := cfg.Registry
	outcome := func(name string) {
		if reg != nil {
			reg.Counter(obs.Label("sdcquery_answers_total", "outcome", name)).Inc()
		}
	}
	if reg != nil {
		reg.Gauge("sdcquery_log_depth", func() float64 { return float64(srv.LogDepth()) })
		reg.Gauge("sdcquery_log_dropped", func() float64 {
			_, dropped, _ := srv.LogStats()
			return float64(dropped)
		})
		reg.Gauge("sdcquery_cache_hits", func() float64 {
			hits, _, _, _ := srv.CacheStats()
			return float64(hits)
		})
		reg.Gauge("sdcquery_cache_misses", func() float64 {
			_, misses, _, _ := srv.CacheStats()
			return float64(misses)
		})
		reg.Gauge("sdcquery_cache_entries", func() float64 {
			_, _, entries, _ := srv.CacheStats()
			return float64(entries)
		})
		reg.Gauge("store_shards", func() float64 { return float64(srv.Shards()) })
		reg.Gauge("store_scratch_hit_rate", func() float64 {
			gets, news := srv.ScratchStats()
			if gets == 0 {
				return 0
			}
			return float64(gets-news) / float64(gets)
		})
		reg.Gauge("sdcquery_batches", func() float64 {
			batches, _ := srv.BatchStats()
			return float64(batches)
		})
		reg.Gauge("sdcquery_batch_width_avg", func() float64 {
			batches, queries := srv.BatchStats()
			if batches == 0 {
				return 0
			}
			return float64(queries) / float64(batches)
		})
	}
	// Admission control: shed excess per-client load at the door. The
	// in-flight gauge is the serving queue depth — requests admitted but
	// not yet answered.
	var inflight atomic.Int64
	var buckets *obs.TokenBuckets
	if cfg.RateLimit > 0 {
		var err error
		if buckets, err = obs.NewTokenBuckets(cfg.RateLimit, cfg.RateBurst, 0); err != nil {
			panic(err) // unreachable: RateLimit > 0 is the only requirement
		}
	}
	if reg != nil {
		reg.Gauge("sdcquery_inflight_requests", func() float64 { return float64(inflight.Load()) })
		if buckets != nil {
			reg.Gauge("sdcquery_admission_clients", func() float64 { return float64(buckets.Clients()) })
		}
	}
	admitted := func(decision string) {
		if reg != nil {
			reg.Counter(obs.Label("sdcquery_admission_total", "decision", decision)).Inc()
		}
	}
	// admit applies admission control; a false return means the 429 has
	// been written.
	admit := func(w http.ResponseWriter, r *http.Request) bool {
		if buckets == nil {
			return true
		}
		client := r.Header.Get(PrincipalHeader)
		if client == "" {
			client = r.RemoteAddr
			if host, _, err := net.SplitHostPort(client); err == nil {
				client = host
			}
		}
		ok, retry := buckets.Allow(client)
		if !ok {
			admitted("throttled")
			secs := int(math.Ceil(retry.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("admission control: client %q over %g requests/s; retry in %s", client, cfg.RateLimit, retry.Round(time.Millisecond)))
			return false
		}
		admitted("admitted")
		return true
	}
	// readBody enforces the body cap via http.MaxBytesReader: an oversized
	// body is a clean 413 (with its own outcome label), not a JSON
	// unexpected-EOF 400.
	tooLarge := func(w http.ResponseWriter, err error) bool {
		var mbe *http.MaxBytesError
		if !errors.As(err, &mbe) {
			return false
		}
		outcome("too-large")
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		return true
	}
	// Per-principal remaining-ε gauges, registered once per principal the
	// moment it first appears (registration replaces the callback, so the
	// seen-set only avoids re-locking the registry on every request).
	var seenPrincipals sync.Map
	principalGauge := func(p string) {
		if reg == nil || p == "" {
			return
		}
		if _, loaded := seenPrincipals.LoadOrStore(p, true); loaded {
			return
		}
		reg.Gauge(obs.Label("dp_epsilon_remaining", "principal", p), func() float64 {
			rem, ok := srv.BudgetRemaining(p)
			if !ok {
				return 0
			}
			return rem
		})
	}
	answer := func(w http.ResponseWriter, r *http.Request, q Query) {
		principal := r.Header.Get(PrincipalHeader)
		a, err := srv.AskAs(principal, q)
		if err != nil {
			var be *dp.BudgetError
			switch {
			case errors.As(err, &be):
				// The budget refusal is a 429 with the remaining ε as the
				// Allow-style hint: the client learns how much (if any)
				// smaller a charge could still succeed, and nothing else.
				outcome("budget-exhausted")
				principalGauge(principal)
				w.Header().Set(epsilonRemainingHeader, fmt.Sprintf("%g", be.Remaining))
				writeError(w, http.StatusTooManyRequests, err.Error())
			case errors.Is(err, dp.ErrNoPrincipal):
				outcome("no-principal")
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("%v; set the %s header", err, PrincipalHeader))
			default:
				outcome("error")
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		aj := AnswerJSON{
			Denied: a.Denied, Reason: a.Reason, Value: a.Value,
			Lo: a.Lo, Hi: a.Hi, Interval: a.Interval,
		}
		switch {
		case a.Denied:
			outcome("denied")
		case a.Interval:
			outcome("interval")
		default:
			outcome("answered")
		}
		if a.Budgeted {
			principalGauge(principal)
			eps, rem := a.Epsilon, a.EpsilonRemaining
			aj.Epsilon, aj.EpsilonRemaining = &eps, &rem
			w.Header().Set(epsilonRemainingHeader, fmt.Sprintf("%g", rem))
		}
		writeJSON(w, http.StatusOK, aj)
	}
	// batchItem renders one batch element with the same outcome accounting
	// and ε surfacing as the single-query path; only the transport differs
	// (an in-body error string instead of a per-request status code).
	batchItem := func(principal string, a Answer, err error) BatchItemJSON {
		if err != nil {
			var be *dp.BudgetError
			switch {
			case errors.As(err, &be):
				outcome("budget-exhausted")
				principalGauge(principal)
			case errors.Is(err, dp.ErrNoPrincipal):
				outcome("no-principal")
			default:
				outcome("error")
			}
			return BatchItemJSON{Error: err.Error()}
		}
		item := BatchItemJSON{AnswerJSON: AnswerJSON{
			Denied: a.Denied, Reason: a.Reason, Value: a.Value,
			Lo: a.Lo, Hi: a.Hi, Interval: a.Interval,
		}}
		switch {
		case a.Denied:
			outcome("denied")
		case a.Interval:
			outcome("interval")
		default:
			outcome("answered")
		}
		if a.Budgeted {
			principalGauge(principal)
			eps, rem := a.Epsilon, a.EpsilonRemaining
			item.Epsilon, item.EpsilonRemaining = &eps, &rem
		}
		return item
	}
	batchMax := cfg.BatchMax
	if batchMax == 0 {
		batchMax = DefaultBatchMax
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/querybatch", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		if batchMax < 0 {
			writeError(w, http.StatusForbidden, "POST /querybatch is disabled")
			return
		}
		// One admission charge per batch: batchMax, not the rate limit, is
		// what bounds the work an admitted request can schedule.
		if !admit(w, r) {
			return
		}
		inflight.Add(1)
		defer inflight.Add(-1)
		var br BatchRequestJSON
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&br); err != nil {
			if tooLarge(w, err) {
				return
			}
			outcome("error")
			writeError(w, http.StatusBadRequest, "malformed JSON batch: "+err.Error())
			return
		}
		if len(br.Queries) == 0 {
			writeError(w, http.StatusBadRequest, "batch carries no queries")
			return
		}
		if len(br.Queries) > batchMax {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch carries %d queries, cap is %d", len(br.Queries), batchMax))
			return
		}
		// Wire-format conversion degrades per item; only convertible
		// queries reach the server (and its log), mirroring how a malformed
		// /query body is rejected before AskAs.
		convErr := make([]error, len(br.Queries))
		qs := make([]Query, 0, len(br.Queries))
		qIdx := make([]int, 0, len(br.Queries))
		for i, qj := range br.Queries {
			q, err := qj.ToQuery()
			if err != nil {
				convErr[i] = err
				continue
			}
			qs = append(qs, q)
			qIdx = append(qIdx, i)
		}
		principal := r.Header.Get(PrincipalHeader)
		answers, errs := srv.AskBatch(principal, qs)
		resp := BatchResponseJSON{Answers: make([]BatchItemJSON, len(br.Queries))}
		for i, err := range convErr {
			if err != nil {
				outcome("error")
				resp.Answers[i] = BatchItemJSON{Error: err.Error()}
			}
		}
		for k, i := range qIdx {
			resp.Answers[i] = batchItem(principal, answers[k], errs[k])
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		if !admit(w, r) {
			return
		}
		inflight.Add(1)
		defer inflight.Add(-1)
		var qj QueryJSON
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&qj); err != nil {
			if tooLarge(w, err) {
				return
			}
			outcome("error")
			writeError(w, http.StatusBadRequest, "malformed JSON query: "+err.Error())
			return
		}
		q, err := qj.ToQuery()
		if err != nil {
			outcome("error")
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		answer(w, r, q)
	})
	mux.HandleFunc("/sql", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		if !admit(w, r) {
			return
		}
		inflight.Add(1)
		defer inflight.Add(-1)
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			if tooLarge(w, err) {
				return
			}
			outcome("error")
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		q, err := ParseQuery(string(body))
		if err != nil {
			outcome("error")
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		answer(w, r, q)
	})
	mux.HandleFunc("/protect", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodPost) {
			return
		}
		if !authorizeOwner(w, r, cfg.OwnerToken) {
			return
		}
		var pr ProtectRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&pr); err != nil {
			if tooLarge(w, err) {
				return
			}
			writeError(w, http.StatusBadRequest, "malformed JSON protect request: "+err.Error())
			return
		}
		// Direct identifiers never ship in a microdata release, whatever the
		// masking method targets; stripping them before masking keeps the
		// Report's column indices consistent with the released schema (the
		// request's columns/target likewise address the identifier-free view).
		release := srv.Dataset().DropRole(dataset.Identifier)
		// The request context carries the middleware timeout and the client
		// connection: a dropped client or server drain cancels the masking
		// run at its next chunk boundary instead of burning cores.
		masked, rep, err := sdc.ApplySeed(r.Context(), pr.Method, release, sdc.Params{
			Target: pr.Target, Columns: pr.Columns, Values: pr.Params,
		}, pr.Seed)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err.Error())
			return
		}
		var csv strings.Builder
		if err := masked.WriteCSV(&csv); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, ProtectResponse{Report: rep, CSV: csv.String()})
	})
	mux.HandleFunc("/log", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for i, q := range srv.Log() {
			fmt.Fprintf(w, "%4d  %s\n", i+1, q)
		}
	})
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown path "+r.URL.Path)
	})
	return mux
}

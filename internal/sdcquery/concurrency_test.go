package sdcquery

import (
	"sync"
	"testing"

	"privacy3d/internal/dataset"
)

// The HTTP front end serves requests concurrently; the Server must be safe
// under parallel Ask/Log traffic (run with -race).
func TestServerConcurrentAsk(t *testing.T) {
	srv, err := NewServer(dataset.SyntheticTrial(dataset.TrialConfig{N: 200, Seed: 1}),
		Config{Protection: Auditing})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := Query{Agg: Count, Where: Predicate{
					{Col: "height", Op: Ge, V: float64(140 + (w*25+i)%60)},
				}}
				if _, err := srv.Ask(q); err != nil {
					t.Error(err)
					return
				}
				_ = srv.Log()
			}
		}(w)
	}
	wg.Wait()
	if got := len(srv.Log()); got != 200 {
		t.Errorf("log has %d entries, want 200", got)
	}
}

package sdcquery

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/obs"
)

// answerBits collapses an Answer to its released bits for byte-identity
// comparison.
func answerBits(a Answer) [3]uint64 {
	return [3]uint64{math.Float64bits(a.Value), math.Float64bits(a.Lo), math.Float64bits(a.Hi)}
}

// loadWorkload is a mixed query workload with heavy repetition (every query
// shape appears many times), exercising both the cache-hit and cache-miss
// paths.
func loadWorkload() []Query {
	var qs []Query
	for _, v := range []float64{70, 80, 95, 108} {
		qs = append(qs,
			Query{Agg: Count, Where: Predicate{{Col: "weight", Op: Gt, V: v - 10}}},
			Query{Agg: Sum, Attr: "weight", Where: Predicate{{Col: "height", Op: Lt, V: v + 90}}},
			// weight ≤ 70 already matches two records, so no AVG is empty.
			Query{Agg: Avg, Attr: "blood_pressure", Where: Predicate{{Col: "weight", Op: Le, V: v}}},
		)
	}
	work := make([]Query, 0, len(qs)*24)
	for rep := 0; rep < 24; rep++ {
		work = append(work, qs...)
	}
	return work
}

// TestServerHammerByteIdenticalToSerial is the tentpole's correctness gate:
// for every protection whose answers are a pure function of (principal,
// query), 64 goroutines hammering the restructured lock-free read path must
// release bit-identical answers to a fresh server answering the same
// workload serially. Runs under -race in make check.
func TestServerHammerByteIdenticalToSerial(t *testing.T) {
	work := loadWorkload()
	for _, cfg := range []Config{
		{Protection: NoProtection},
		{Protection: SizeRestriction, MinSetSize: 2},
		{Protection: Perturbation, Seed: 5},
		{Protection: Camouflage, Seed: 5},
		{Protection: RandomSample, Seed: 5},
		{Protection: DifferentialPrivacy, Seed: 5, Epsilon: 0.01, EpsilonBudget: 1000},
	} {
		t.Run(cfg.Protection.String(), func(t *testing.T) {
			serial, err := NewServer(dataset.Dataset2(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[string][3]uint64)
			for _, q := range work {
				a, err := serial.AskAs("alice", q)
				if err != nil {
					t.Fatal(err)
				}
				if prev, seen := want[q.String()]; seen && prev != answerBits(a) {
					t.Fatalf("serial path answered %q two different ways", q)
				}
				want[q.String()] = answerBits(a)
			}

			hammered, err := NewServer(dataset.Dataset2(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 64
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < len(work); i += goroutines {
						q := work[i]
						a, err := hammered.AskAs("alice", q)
						if err != nil {
							errs <- fmt.Errorf("goroutine %d: %v", g, err)
							return
						}
						if answerBits(a) != want[q.String()] {
							errs <- fmt.Errorf("concurrent answer for %q diverged from serial", q)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if cfg.Protection == DifferentialPrivacy {
				// 12 distinct (principal, query) shapes at ε=0.01 each: the
				// hammer must have debited exactly once per shape, no
				// matter how many goroutines raced on the first release.
				rem, _ := hammered.BudgetRemaining("alice")
				if want := 1000 - 0.01*12; math.Abs(rem-want) > 1e-9 {
					t.Errorf("remaining ε = %g, want %g (exactly one debit per distinct query)", rem, want)
				}
			}
		})
	}
}

// TestServerSoakBoundedMemory pushes a large stream of DISTINCT queries
// through a server and checks that every piece of per-query state — query
// log, answer cache, overlap history — stays within its configured bound.
func TestServerSoakBoundedMemory(t *testing.T) {
	n := 200_000
	if testing.Short() {
		n = 20_000
	}
	srv, err := NewServer(dataset.Dataset2(), Config{
		Protection: Perturbation, Seed: 1, QueryLogCap: 512, AnswerCacheCap: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		q := Query{Agg: Count, Where: Predicate{{Col: "weight", Op: Gt, V: float64(i)}}}
		if _, err := srv.AskAs("alice", q); err != nil {
			t.Fatal(err)
		}
	}
	retained, dropped, capacity := srv.LogStats()
	if capacity != 512 || retained != 512 {
		t.Errorf("LogStats retained/cap = %d/%d, want 512/512", retained, capacity)
	}
	if dropped != int64(n-512) {
		t.Errorf("LogStats dropped = %d, want %d", dropped, n-512)
	}
	if got := len(srv.Log()); got != 512 {
		t.Errorf("Log() returned %d entries, want the 512-newest window", got)
	}
	if _, _, entries, ok := srv.CacheStats(); !ok || entries > 256 {
		t.Errorf("cache entries = %d (ok %v), want ≤ 256", entries, ok)
	}

	// Overlap history: deny-when-full keeps the controller's memory at the
	// cap, sacrificing availability, never the overlap bound.
	ov, err := NewServer(dataset.Dataset2(), Config{
		Protection: OverlapRestriction, MinSetSize: 1, MaxOverlap: 0, MaxTrackedQueries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	denials := 0
	for i := 0; i < 50; i++ {
		// Singleton disjoint query sets — admissible until the history cap.
		a, err := ov.AskAs("", Query{Agg: Count, Where: Predicate{{Col: "weight", Op: Gt, V: float64(200 + i)}}})
		if err != nil {
			t.Fatal(err)
		}
		if a.Denied {
			denials++
		}
	}
	if tracked, capacity := ov.OverlapStats(); tracked > 3 || capacity != 3 {
		t.Errorf("OverlapStats = (%d, %d), want tracked ≤ 3, cap 3", tracked, capacity)
	}
}

// TestUnboundedLogOptIn pins the evaluator's escape hatch: with
// UnboundedQueryLog the server retains every query, as the seed did.
func TestUnboundedLogOptIn(t *testing.T) {
	srv, err := NewServer(dataset.Dataset2(), Config{
		Protection: NoProtection, UnboundedQueryLog: true, QueryLogCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := srv.Ask(Query{Agg: Count, Where: Predicate{{Col: "weight", Op: Gt, V: float64(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(srv.Log()); got != 100 {
		t.Errorf("unbounded log retained %d of 100", got)
	}
	retained, dropped, capacity := srv.LogStats()
	if retained != 100 || dropped != 0 || capacity != 0 {
		t.Errorf("LogStats = (%d, %d, %d), want (100, 0, 0)", retained, dropped, capacity)
	}
}

// TestSizeRestrictionImpossibleConfig pins the construction-time error: a
// size-restricted server over fewer than 2·MinSetSize rows can never answer
// anything.
func TestSizeRestrictionImpossibleConfig(t *testing.T) {
	// Dataset2 has 9 rows: minsize 5 ⇒ every query set size is outside
	// [5, 4] — impossible by construction.
	_, err := NewServer(dataset.Dataset2(), Config{Protection: SizeRestriction, MinSetSize: 5})
	if err == nil {
		t.Fatal("accepted a size restriction that denies every query")
	}
	if !strings.Contains(err.Error(), "minsize") {
		t.Errorf("error %q does not explain the minsize conflict", err)
	}
	// 2·MinSetSize ≤ Rows() leaves admissible sizes.
	if _, err := NewServer(dataset.Dataset2(), Config{Protection: SizeRestriction, MinSetSize: 4}); err != nil {
		t.Errorf("rejected an admissible config: %v", err)
	}
	// Other protections are not affected by the check.
	if _, err := NewServer(dataset.Dataset2(), Config{Protection: NoProtection, MinSetSize: 5}); err != nil {
		t.Errorf("minsize check leaked into NoProtection: %v", err)
	}
}

// TestHTTPAdmissionControl429 exercises the token-bucket front door:
// past-burst requests are shed with 429 + Retry-After, distinct clients are
// isolated, and the obs counters record both decisions.
func TestHTTPAdmissionControl429(t *testing.T) {
	srv, err := NewServer(dataset.Dataset2(), Config{Protection: NoProtection})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{
		Registry: reg, RateLimit: 0.1, RateBurst: 2,
	}))
	defer ts.Close()

	post := func(principal string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/sql", strings.NewReader("SELECT COUNT(*) WHERE height >= 170"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(PrincipalHeader, principal)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// The burst admits two requests; the third is throttled.
	for i := 0; i < 2; i++ {
		if resp := post("alice"); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("past-burst status = %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}
	// Another client is unaffected: per-client buckets, not a global one.
	if resp := post("bob"); resp.StatusCode != http.StatusOK {
		t.Errorf("bob throttled by alice's bucket: %d", resp.StatusCode)
	}

	var metrics strings.Builder
	if _, err := reg.WriteTo(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`sdcquery_admission_total{decision="admitted"} 3`,
		`sdcquery_admission_total{decision="throttled"} 1`,
		`sdcquery_admission_clients 2`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %q in:\n%s", want, metrics.String())
		}
	}
}

// TestHTTPOversizedBody413 pins the MaxBytesReader bugfix: an oversized
// body is a clean 413 with its own outcome label, not a JSON
// unexpected-EOF 400.
func TestHTTPOversizedBody413(t *testing.T) {
	srv, err := NewServer(dataset.Dataset2(), Config{Protection: NoProtection})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{Registry: reg}))
	defer ts.Close()

	// Valid JSON syntax up to the cap, so /query's decoder hits the byte
	// limit (a MaxBytesError), not a syntax error.
	big := `{"agg":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	for _, path := range []string{"/query", "/sql"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body: status = %d, want 413", path, resp.StatusCode)
		}
	}
	var metrics strings.Builder
	if _, err := reg.WriteTo(&metrics); err != nil {
		t.Fatal(err)
	}
	if want := `sdcquery_answers_total{outcome="too-large"} 2`; !strings.Contains(metrics.String(), want) {
		t.Errorf("metrics missing %q in:\n%s", want, metrics.String())
	}
}

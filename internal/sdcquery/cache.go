package sdcquery

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// answerCache is the bounded, sharded answer cache of the sustained-load
// serving path: repeated (principal, canonical query) shapes are served
// from memory instead of re-scanning the dataset and re-running the
// protection. It is only consulted for protections whose serial answer is a
// pure function of (principal, query) — every protection except overlap
// restriction, whose repeat-denial depends on the answered history — so a
// cache hit is byte-identical to what the uncached serial path would have
// released. Under DifferentialPrivacy a hit additionally IS the accounting
// fix: the noise key makes a repeat a re-release of the identical value, so
// it must not debit ε again (the seed double-debited; see Server.AskAs).
//
// Shards bound lock contention the same way dp.Ledger stripes its budget
// map; each shard evicts FIFO at its per-shard cap, so total memory is
// bounded by the configured capacity regardless of workload.
type answerCache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

const cacheShards = 16

type cacheShard struct {
	mu   sync.Mutex
	m    map[string]Answer
	fifo []string // insertion order, oldest first
	cap  int
}

// newAnswerCache builds a cache retaining at most capacity answers in
// total, spread over the shards (each shard holds at least one entry).
func newAnswerCache(capacity int) *answerCache {
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &answerCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]Answer)
		c.shards[i].cap = per
	}
	return c
}

func (c *answerCache) shard(key string) *cacheShard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return &c.shards[h.Sum64()%cacheShards]
}

// get returns the cached answer for key, counting the hit or miss.
func (c *answerCache) get(key string) (Answer, bool) {
	s := c.shard(key)
	s.mu.Lock()
	a, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return a, ok
}

// put stores the answer under key, evicting the shard's oldest entry when
// full. Re-storing an existing key refreshes the value without growing the
// shard.
func (c *answerCache) put(key string, a Answer) {
	s := c.shard(key)
	s.mu.Lock()
	if _, exists := s.m[key]; !exists {
		if len(s.fifo) >= s.cap {
			delete(s.m, s.fifo[0])
			s.fifo = s.fifo[1:]
		}
		s.fifo = append(s.fifo, key)
	}
	s.m[key] = a
	s.mu.Unlock()
}

// stats reports lifetime hits and misses plus the current entry count.
func (c *answerCache) stats() (hits, misses int64, entries int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += len(s.m)
		s.mu.Unlock()
	}
	return c.hits.Load(), c.misses.Load(), entries
}

package sdcquery

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/dp"
	"privacy3d/internal/obs"
)

func dpServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Protection = DifferentialPrivacy
	srv, err := NewServer(dataset.Dataset2(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestDPPerturbsAndDebits(t *testing.T) {
	srv := dpServer(t, Config{Seed: 9, Epsilon: 0.5, EpsilonBudget: 2})
	q := Query{Agg: Avg, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Ge, V: 170}}}
	truth, err := q.Evaluate(srv.Dataset())
	if err != nil {
		t.Fatal(err)
	}
	a, err := srv.AskAs("alice", q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Budgeted || a.Epsilon != 0.5 || a.EpsilonRemaining != 1.5 {
		t.Errorf("budget fields = %+v", a)
	}
	if a.Value == truth {
		t.Error("DP answer equals the true value; no noise was added")
	}
	// COUNT answers are perturbed too.
	c, err := srv.AskAs("alice", Query{Agg: Count, Where: Predicate{{Col: "height", Op: Ge, V: 170}}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Value == math.Trunc(c.Value) || c.EpsilonRemaining != 1.0 {
		t.Errorf("count answer = %+v (want non-integral perturbed value, remaining 1)", c)
	}
	if rem, ok := srv.BudgetRemaining("alice"); !ok || rem != 1.0 {
		t.Errorf("BudgetRemaining = %g, %v", rem, ok)
	}
	// Anonymous queries cannot be budget-accounted.
	if _, err := srv.Ask(q); !errors.Is(err, dp.ErrNoPrincipal) {
		t.Errorf("anonymous Ask error = %v", err)
	}
	// SUM over a categorical attribute fails cleanly.
	if _, err := srv.AskAs("alice", Query{Agg: Sum, Attr: "aids", Where: nil}); err == nil {
		t.Error("accepted SUM over categorical attribute")
	}
}

func TestDPRepeatAnswersIdenticallyAndBudgetExhausts(t *testing.T) {
	srv := dpServer(t, Config{Seed: 3, Epsilon: 1, EpsilonBudget: 3})
	q := Query{Agg: Count, Where: Predicate{{Col: "weight", Op: Gt, V: 90}}}
	var values []float64
	for i := 0; i < 3; i++ {
		a, err := srv.AskAs("alice", q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		values = append(values, a.Value)
		// A repeat is a re-release of a value alice already holds: ε is
		// debited exactly once, on the first release.
		if a.EpsilonRemaining != 2 {
			t.Errorf("repeat %d: remaining ε = %g, want 2 (repeats must not debit)", i, a.EpsilonRemaining)
		}
	}
	// The seeding contract: a repeated (principal, query) re-releases the
	// identical perturbed value, so averaging repetitions gains nothing.
	if values[0] != values[1] || values[1] != values[2] {
		t.Errorf("repeated query drew fresh noise: %v", values)
	}
	// Distinct queries each debit; the fourth distinct query overdraws the
	// ε=3 budget.
	for i, v := range []float64{80, 70} {
		if _, err := srv.AskAs("alice", Query{Agg: Count, Where: Predicate{{Col: "weight", Op: Gt, V: v}}}); err != nil {
			t.Fatalf("distinct query %d: %v", i, err)
		}
	}
	_, err := srv.AskAs("alice", Query{Agg: Count, Where: Predicate{{Col: "weight", Op: Gt, V: 60}}})
	if !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("post-exhaustion error = %v", err)
	}
	var be *dp.BudgetError
	if !errors.As(err, &be) || be.Remaining != 0 {
		t.Errorf("budget error detail = %v", err)
	}
	// The exhausted principal can still re-fetch answers it already holds.
	a, err := srv.AskAs("alice", q)
	if err != nil {
		t.Fatalf("exhausted re-release: %v", err)
	}
	if a.Value != values[0] || a.EpsilonRemaining != 0 {
		t.Errorf("exhausted re-release = %+v, want value %g and remaining 0", a, values[0])
	}
	// A different principal is unaffected, and principals are listed.
	if _, err := srv.AskAs("bob", q); err != nil {
		t.Errorf("bob blocked by alice's exhaustion: %v", err)
	}
	if got := srv.BudgetPrincipals(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Errorf("BudgetPrincipals = %v", got)
	}
}

// TestDPCacheHitAccounting pins the cache-side of the accounting rule: the
// first release of a (principal, query) is a cache miss that debits ε; every
// repeat is a cache hit that debits nothing and reports the CURRENT
// remaining budget, not a stale snapshot.
func TestDPCacheHitAccounting(t *testing.T) {
	srv := dpServer(t, Config{Seed: 17, Epsilon: 1, EpsilonBudget: 10})
	q := Query{Agg: Sum, Attr: "weight", Where: Predicate{{Col: "height", Op: Lt, V: 180}}}
	first, err := srv.AskAs("alice", q)
	if err != nil {
		t.Fatal(err)
	}
	if first.EpsilonRemaining != 9 {
		t.Fatalf("first release remaining = %g, want 9", first.EpsilonRemaining)
	}
	// Spend some budget on a different query, then repeat the first.
	if _, err := srv.AskAs("alice", Query{Agg: Count, Where: nil}); err != nil {
		t.Fatal(err)
	}
	repeat, err := srv.AskAs("alice", q)
	if err != nil {
		t.Fatal(err)
	}
	if repeat.Value != first.Value || !repeat.Budgeted || repeat.Epsilon != 1 {
		t.Errorf("repeat = %+v, want re-release of %+v", repeat, first)
	}
	if repeat.EpsilonRemaining != 8 {
		t.Errorf("repeat remaining = %g, want current ledger state 8 (charged once, refreshed on hit)", repeat.EpsilonRemaining)
	}
	if rem, _ := srv.BudgetRemaining("alice"); rem != 8 {
		t.Errorf("ledger remaining = %g after repeat, want 8 (repeat must not debit)", rem)
	}
	hits, misses, _, ok := srv.CacheStats()
	if !ok || hits != 1 || misses != 2 {
		t.Errorf("CacheStats = hits %d misses %d ok %v, want 1/2/true", hits, misses, ok)
	}
	// Per-principal isolation: bob asking alice's query is a miss and a
	// fresh release with bob's own noise key.
	bob, err := srv.AskAs("bob", q)
	if err != nil {
		t.Fatal(err)
	}
	if bob.Value == first.Value {
		t.Error("bob received alice's noise draw")
	}
	if rem, _ := srv.BudgetRemaining("bob"); rem != 9 {
		t.Errorf("bob remaining = %g, want 9", rem)
	}
}

func TestDPGaussianMechanism(t *testing.T) {
	lap := dpServer(t, Config{Seed: 5, Epsilon: 1})
	gau := dpServer(t, Config{Seed: 5, Epsilon: 1, Delta: 1e-6})
	q := Query{Agg: Sum, Attr: "weight", Where: nil}
	la, err := lap.AskAs("alice", q)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := gau.AskAs("alice", q)
	if err != nil {
		t.Fatal(err)
	}
	if la.Value == ga.Value {
		t.Error("laplace and gaussian mechanisms released identical values")
	}
	if _, err := NewServer(dataset.Dataset2(), Config{Protection: DifferentialPrivacy, Delta: 1.5}); err == nil {
		t.Error("accepted delta ≥ 1")
	}
}

// dpWorkload is a fixed mixed workload over several principals, used by
// the determinism test. Returned as (principal, query) pairs.
func dpWorkload() []struct {
	principal string
	q         Query
} {
	var work []struct {
		principal string
		q         Query
	}
	for _, p := range []string{"alice", "bob", "carol"} {
		for _, q := range []Query{
			{Agg: Count, Where: Predicate{{Col: "height", Op: Lt, V: 176}}},
			{Agg: Sum, Attr: "weight", Where: Predicate{{Col: "height", Op: Ge, V: 170}}},
			{Agg: Avg, Attr: "blood_pressure", Where: Predicate{{Col: "weight", Op: Gt, V: 80}}},
			{Agg: Count, Where: nil},
		} {
			work = append(work, struct {
				principal string
				q         Query
			}{p, q})
		}
	}
	return work
}

// TestDPDeterministicAcrossWorkers is the reproducibility gate the issue
// requires: the same seed must yield byte-identical perturbed answers no
// matter how many goroutines submit the workload concurrently. Runs under
// -race in make check.
func TestDPDeterministicAcrossWorkers(t *testing.T) {
	work := dpWorkload()
	run := func(workers int) map[string]uint64 {
		srv := dpServer(t, Config{Seed: 11, Epsilon: 0.25, EpsilonBudget: 100})
		out := make(map[string]uint64, len(work))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(work); i += workers {
					item := work[i]
					a, err := srv.AskAs(item.principal, item.q)
					if err != nil {
						t.Errorf("workers=%d item %d: %v", workers, i, err)
						return
					}
					mu.Lock()
					out[item.principal+"\x00"+item.q.String()] = math.Float64bits(a.Value)
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		return out
	}
	want := run(1)
	if len(want) != len(work) {
		t.Fatalf("reference run answered %d of %d", len(want), len(work))
	}
	for _, workers := range []int{1, 2, 8} {
		got := run(workers)
		for k, bits := range want {
			if got[k] != bits {
				t.Errorf("workers=%d: answer for %q differs: %x vs %x", workers, k, got[k], bits)
			}
		}
	}
	// A different seed yields a different answer stream.
	other := dpServer(t, Config{Seed: 12, Epsilon: 0.25, EpsilonBudget: 100})
	same := 0
	for _, item := range work {
		a, err := other.AskAs(item.principal, item.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a.Value) == want[item.principal+"\x00"+item.q.String()] {
			same++
		}
	}
	if same == len(work) {
		t.Error("seed 12 reproduced seed 11's answers")
	}
}

func TestDPHTTPBudgetFlow(t *testing.T) {
	srv := dpServer(t, Config{Seed: 21, Epsilon: 1, EpsilonBudget: 2})
	reg := obs.NewRegistry()
	ts := httptest.NewServer(NewHandler(srv, HandlerConfig{Registry: reg}))
	defer ts.Close()

	post := func(principal, body string) (*http.Response, AnswerJSON, string) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/sql", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if principal != "" {
			req.Header.Set(PrincipalHeader, principal)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var a AnswerJSON
		var e errorJSON
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
				t.Fatal(err)
			}
			return resp, a, ""
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		return resp, a, e.Error
	}

	const q = "SELECT COUNT(*) WHERE height >= 170"
	// Missing principal → 400 naming the header.
	resp, _, msg := post("", q)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(msg, PrincipalHeader) {
		t.Errorf("no-principal response = %d %q", resp.StatusCode, msg)
	}
	// Two queries spend the ε=2 budget; the answers carry the ε fields.
	resp, a, _ := post("alice", q)
	if resp.StatusCode != http.StatusOK || a.Epsilon == nil || *a.Epsilon != 1 ||
		a.EpsilonRemaining == nil || *a.EpsilonRemaining != 1 {
		t.Fatalf("first answer = %d %+v", resp.StatusCode, a)
	}
	if got := resp.Header.Get("X-Privacy3D-Epsilon-Remaining"); got != "1" {
		t.Errorf("remaining header = %q", got)
	}
	resp, a, _ = post("alice", "SELECT AVG(blood_pressure) WHERE height >= 170")
	if resp.StatusCode != http.StatusOK || a.EpsilonRemaining == nil || *a.EpsilonRemaining != 0 {
		t.Fatalf("second answer = %d %+v", resp.StatusCode, a)
	}
	// Repeating an already-released query is a free re-release: 200 with
	// the ε fields showing the exhausted budget but no fresh debit.
	resp, a, _ = post("alice", q)
	if resp.StatusCode != http.StatusOK || a.EpsilonRemaining == nil || *a.EpsilonRemaining != 0 {
		t.Fatalf("cached repeat = %d %+v", resp.StatusCode, a)
	}
	// A third DISTINCT query is refused with 429 and the remaining-ε hint.
	resp, _, msg = post("alice", "SELECT COUNT(*) WHERE height < 170")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted status = %d (%s)", resp.StatusCode, msg)
	}
	if got := resp.Header.Get("X-Privacy3D-Epsilon-Remaining"); got != "0" {
		t.Errorf("exhausted remaining header = %q", got)
	}
	if !strings.Contains(msg, "ε=0 remaining") {
		t.Errorf("exhausted message lacks remaining hint: %q", msg)
	}
	// bob still has budget.
	if resp, _, _ := post("bob", q); resp.StatusCode != http.StatusOK {
		t.Errorf("bob refused: %d", resp.StatusCode)
	}

	// Outcome labels classify the DP refusals distinctly, and the
	// per-principal gauges expose remaining ε.
	var metrics strings.Builder
	if _, err := reg.WriteTo(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`sdcquery_answers_total{outcome="answered"} 4`,
		`sdcquery_answers_total{outcome="budget-exhausted"} 1`,
		`sdcquery_answers_total{outcome="no-principal"} 1`,
		`dp_epsilon_remaining{principal="alice"} 0`,
		`dp_epsilon_remaining{principal="bob"} 1`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %q in:\n%s", want, metrics.String())
		}
	}
}

func TestDPNonDPServerIgnoresPrincipal(t *testing.T) {
	srv, err := NewServer(dataset.Dataset2(), Config{Protection: NoProtection})
	if err != nil {
		t.Fatal(err)
	}
	a, err := srv.AskAs("alice", Query{Agg: Count, Where: nil})
	if err != nil || a.Budgeted {
		t.Errorf("non-DP AskAs = %+v, %v", a, err)
	}
	if _, ok := srv.BudgetRemaining("alice"); ok {
		t.Error("non-DP server claims budget accounting")
	}
	if srv.BudgetPrincipals() != nil {
		t.Error("non-DP server lists principals")
	}
}

// TestDPDeniedEmptyAvgChargesNothing pins the accounting rule: a denial
// (AVG over an empty query set) must not debit ε.
func TestDPDeniedEmptyAvgChargesNothing(t *testing.T) {
	srv := dpServer(t, Config{Seed: 2, Epsilon: 1, EpsilonBudget: 1})
	a, err := srv.AskAs("alice", Query{Agg: Avg, Attr: "blood_pressure",
		Where: Predicate{{Col: "height", Op: Gt, V: 10000}}})
	if err != nil || !a.Denied {
		t.Fatalf("empty AVG = %+v, %v", a, err)
	}
	if rem, _ := srv.BudgetRemaining("alice"); rem != 1 {
		t.Errorf("denial debited ε: remaining %g", rem)
	}
}

// Example of the error surface a CLI or SDK user sees.
func ExampleServer_AskAs_budgetExhausted() {
	srv, _ := NewServer(dataset.Dataset2(), Config{
		Protection: DifferentialPrivacy, Epsilon: 1, EpsilonBudget: 1, Seed: 1,
	})
	if _, err := srv.AskAs("alice", Query{Agg: Count, Where: nil}); err != nil {
		fmt.Println(err)
	}
	// A second DISTINCT query overdraws the ε=1 budget (repeating the first
	// would be a free cache re-release).
	_, err := srv.AskAs("alice", Query{Agg: Count, Where: Predicate{{Col: "height", Op: Ge, V: 170}}})
	fmt.Println(errors.Is(err, dp.ErrBudgetExhausted))
	// Output: true
}

package sdcquery

import "fmt"

// Overlap control (Dobkin, Jones & Lipton 1979): a further inference-control
// strategy for interactive statistical databases — deny any query whose
// query set overlaps a previously answered query set in more than
// MaxOverlap records. Difference attacks like the tracker need highly
// overlapping query pairs, so bounding pairwise overlap blocks them without
// maintaining the full linear system the auditor needs.

// OverlapController wraps answered query sets and enforces the bound.
type OverlapController struct {
	maxOverlap int
	minSetSize int
	answered   [][]int
}

// NewOverlapController builds a controller. minSetSize plays the usual
// size-restriction role; maxOverlap bounds pairwise intersections.
func NewOverlapController(minSetSize, maxOverlap int) (*OverlapController, error) {
	if minSetSize < 1 {
		return nil, fmt.Errorf("sdcquery: minSetSize must be ≥ 1, got %d", minSetSize)
	}
	if maxOverlap < 0 {
		return nil, fmt.Errorf("sdcquery: maxOverlap must be ≥ 0, got %d", maxOverlap)
	}
	return &OverlapController{maxOverlap: maxOverlap, minSetSize: minSetSize}, nil
}

// Admit decides whether a query with the given query set may be answered;
// admitted sets are remembered. rows must be sorted ascending (QuerySet
// returns them that way).
func (oc *OverlapController) Admit(rows []int) (bool, string) {
	if len(rows) < oc.minSetSize {
		return false, fmt.Sprintf("query set size %d below %d", len(rows), oc.minSetSize)
	}
	for _, prev := range oc.answered {
		if ov := sortedOverlap(prev, rows); ov > oc.maxOverlap {
			return false, fmt.Sprintf("overlap %d with an answered query exceeds %d", ov, oc.maxOverlap)
		}
	}
	oc.answered = append(oc.answered, append([]int(nil), rows...))
	return true, ""
}

// Answered returns how many query sets have been admitted.
func (oc *OverlapController) Answered() int { return len(oc.answered) }

func sortedOverlap(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

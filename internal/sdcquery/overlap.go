package sdcquery

import "fmt"

// Overlap control (Dobkin, Jones & Lipton 1979): a further inference-control
// strategy for interactive statistical databases — deny any query whose
// query set overlaps a previously answered query set in more than
// MaxOverlap records. Difference attacks like the tracker need highly
// overlapping query pairs, so bounding pairwise overlap blocks them without
// maintaining the full linear system the auditor needs.

// OverlapController remembers answered query sets and enforces the bound.
//
// Two serving-scale properties, both bugfixes over the first version:
//
//   - Admit is indexed, not a history scan: an inverted index from row →
//     answered-set ids means only the sets actually sharing a row with the
//     candidate are counted, in O(Σ_{r∈rows} |sets(r)|) instead of
//     O(history · set size). Disjoint workloads admit in O(|rows|).
//
//   - History is capped (maxTracked): once the cap is reached, further NEW
//     query sets are denied — deny-when-full, not a sliding window.
//     Forgetting an answered set would re-admit exactly the difference
//     attacks overlap control exists to stop (ask A, wait for A to age out,
//     ask A∖{i}), so a full controller sacrifices availability, never the
//     overlap bound.
type OverlapController struct {
	maxOverlap int
	minSetSize int
	maxTracked int
	nAnswered  int
	// byRow maps a record index to the ids of the answered query sets
	// containing it. Answered sets hold unique rows, so the number of
	// times id appears across the candidate's rows IS |candidate ∩ set id|.
	byRow map[int][]int
	// scratch is the per-Admit id → overlap counter, retained to avoid
	// reallocating the map on every query. The controller is serialized by
	// the caller (Server.stateMu), so one scratch map suffices.
	scratch map[int]int
}

// NewOverlapController builds a controller. minSetSize plays the usual
// size-restriction role; maxOverlap bounds pairwise intersections;
// maxTracked caps the answered-set history (values < 1 fall back to
// DefaultMaxTrackedQueries).
func NewOverlapController(minSetSize, maxOverlap, maxTracked int) (*OverlapController, error) {
	if minSetSize < 1 {
		return nil, fmt.Errorf("sdcquery: minSetSize must be ≥ 1, got %d", minSetSize)
	}
	if maxOverlap < 0 {
		return nil, fmt.Errorf("sdcquery: maxOverlap must be ≥ 0, got %d", maxOverlap)
	}
	if maxTracked < 1 {
		maxTracked = DefaultMaxTrackedQueries
	}
	return &OverlapController{
		maxOverlap: maxOverlap,
		minSetSize: minSetSize,
		maxTracked: maxTracked,
		byRow:      map[int][]int{},
		scratch:    map[int]int{},
	}, nil
}

// Admit decides whether a query with the given query set may be answered;
// admitted sets are remembered. rows must be sorted ascending and unique
// (QuerySet returns them that way). Not safe for concurrent use — the
// server serializes calls on its state mutex.
func (oc *OverlapController) Admit(rows []int) (bool, string) {
	if len(rows) < oc.minSetSize {
		return false, fmt.Sprintf("query set size %d below %d", len(rows), oc.minSetSize)
	}
	clear(oc.scratch)
	for _, r := range rows {
		for _, id := range oc.byRow[r] {
			oc.scratch[id]++
			if ov := oc.scratch[id]; ov > oc.maxOverlap {
				return false, fmt.Sprintf("overlap %d with an answered query exceeds %d", ov, oc.maxOverlap)
			}
		}
	}
	if oc.nAnswered >= oc.maxTracked {
		return false, fmt.Sprintf("answered-query history full (%d sets tracked): refusing new query sets rather than forgetting old ones", oc.maxTracked)
	}
	id := oc.nAnswered
	oc.nAnswered++
	for _, r := range rows {
		oc.byRow[r] = append(oc.byRow[r], id)
	}
	return true, ""
}

// Answered returns how many query sets have been admitted.
func (oc *OverlapController) Answered() int { return oc.nAnswered }

// Stats reports the answered-history size and its cap.
func (oc *OverlapController) Stats() (tracked, capacity int) {
	return oc.nAnswered, oc.maxTracked
}

// sortedOverlap counts the intersection of two sorted ascending int slices.
// The indexed Admit path no longer uses it per query; it remains the
// reference the property tests compare the index against.
func sortedOverlap(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

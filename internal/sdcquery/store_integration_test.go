package sdcquery

import (
	"math"
	"strings"
	"testing"

	"privacy3d/internal/dataset"
)

// mixedDataset builds a schema with a categorical column that genuinely
// contains the empty string next to numeric zeros — the shape that made the
// seed's Cond.String() ambiguous.
func mixedDataset() *dataset.Dataset {
	d := dataset.New(
		dataset.Attribute{Name: "x", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "tag", Role: dataset.NonConfidential, Kind: dataset.Nominal},
		dataset.Attribute{Name: "v", Role: dataset.Confidential, Kind: dataset.Numeric},
	)
	vals := []struct {
		x   float64
		tag string
		v   float64
	}{
		{0, "", 10}, {0, "zero", 20}, {1, "", 30}, {2, "a", 40},
		{3, "a", 50}, {0, "b", 60}, {4, "", 70}, {5, "b", 80},
	}
	for _, r := range vals {
		d.MustAppend(r.x, r.tag, r.v)
	}
	return d
}

// TestCondStringCollisionRegression pins the satellite fix: a categorical
// condition on the empty string and a numeric condition on 0 used to render
// to the same canonical string — which is the answer-cache and camouflage
// key, so the two DISTINCT queries shared cached answers. The renderings
// must differ, and a server must answer the two queries differently.
func TestCondStringCollisionRegression(t *testing.T) {
	strCond := Cond{Col: "tag", Op: Eq, S: "", Str: true}
	numCond := Cond{Col: "tag", Op: Eq, V: 0}
	if strCond.String() == numCond.String() {
		t.Fatalf("collision: %q renders both the empty-string and the numeric-0 condition", strCond.String())
	}
	if got, want := strCond.String(), `tag = ""`; got != want {
		t.Fatalf("string cond renders %q, want %q", got, want)
	}
	if got, want := numCond.String(), "tag = 0"; got != want {
		t.Fatalf("numeric cond renders %q, want %q", got, want)
	}

	// End to end: on a server, COUNT(tag = "") and COUNT(x = 0) are
	// different queries with different answers; with the seed's ambiguous
	// rendering and an answer cache, look-alike canonical strings could
	// serve one query's cached answer for the other.
	d := mixedDataset()
	srv, err := NewServer(d, Config{Protection: NoProtection, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	qStr := Query{Agg: Count, Where: Predicate{strCond}}
	qNum := Query{Agg: Count, Where: Predicate{{Col: "x", Op: Eq, V: 0}}}
	if qStr.String() == qNum.String() {
		t.Fatalf("distinct queries share the canonical string %q", qStr.String())
	}
	aStr, err := srv.Ask(qStr)
	if err != nil {
		t.Fatal(err)
	}
	aNum, err := srv.Ask(qNum)
	if err != nil {
		t.Fatal(err)
	}
	if aStr.Value != 3 {
		t.Fatalf(`COUNT(tag = "") = %g, want 3`, aStr.Value)
	}
	if aNum.Value != 3 {
		t.Fatalf("COUNT(x = 0) = %g, want 3", aNum.Value)
	}
}

// TestCompileKindMismatch pins the compiled predicate's up-front
// validation: string values on numeric columns and numeric values on
// categorical columns are errors, reported once at compile time.
func TestCompileKindMismatch(t *testing.T) {
	d := mixedDataset()
	cases := []struct {
		p    Predicate
		want string
	}{
		{Predicate{{Col: "x", Op: Eq, S: "hello", Str: true}}, "string value"},
		{Predicate{{Col: "x", Op: Eq, Str: true}}, "string value"},
		{Predicate{{Col: "tag", Op: Eq, V: 7}}, "numeric value"},
		{Predicate{{Col: "tag", Op: Lt, S: "a", Str: true}}, "not valid for categorical"},
		{Predicate{{Col: "missing", Op: Eq, V: 1}}, "unknown column"},
	}
	for _, c := range cases {
		_, err := c.p.Compile(d.Attrs())
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%v) err = %v, want %q", c.p, err, c.want)
		}
		// The query evaluator and the server must report the same error.
		if _, err2 := (Query{Agg: Count, Where: c.p}).Evaluate(d); err2 == nil || err2.Error() != err.Error() {
			t.Errorf("Evaluate(%v) err = %v, want %v", c.p, err2, err)
		}
	}
}

// TestServerMatchesEvaluate pins the shared-evaluator satellite across the
// storage rewire: for every aggregate the unprotected server answer —
// computed via segment indexes and bitmap-driven sweeps — is byte-identical
// to Query.Evaluate's compiled scan, on both the indexed and ForceScan
// configurations and across segment boundaries.
func TestServerMatchesEvaluate(t *testing.T) {
	d := mixedDataset()
	queries := []Query{
		{Agg: Count, Where: Predicate{{Col: "x", Op: Ge, V: 1}}},
		{Agg: Sum, Attr: "v", Where: Predicate{{Col: "tag", Op: Ne, S: "a"}}},
		{Agg: Avg, Attr: "v", Where: Predicate{{Col: "tag", Op: Eq, S: "", Str: true}}},
		{Agg: Sum, Attr: "v", Where: Predicate{}},
	}
	for _, forceScan := range []bool{false, true} {
		srv, err := NewServer(d, Config{Protection: NoProtection, SegmentSize: 64, ForceScan: forceScan})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want, err := q.Evaluate(d)
			if err != nil {
				t.Fatal(err)
			}
			a, err := srv.Ask(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(a.Value) != math.Float64bits(want) {
				t.Errorf("forceScan=%v: server %s = %x, Evaluate = %x (byte identity)",
					forceScan, q, math.Float64bits(a.Value), math.Float64bits(want))
			}
		}
	}
}

// TestServerIngest pins the growing-database semantics: ingested rows are
// visible to the next query (the versioned cache key prevents stale hits),
// Rows/Version advance, and Dataset() materializes the grown view while
// the pre-ingest handle stays untouched.
func TestServerIngest(t *testing.T) {
	d := mixedDataset()
	srv, err := NewServer(d, Config{Protection: NoProtection, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Agg: Count, Where: Predicate{{Col: "x", Op: Ge, V: 0}}}
	a, err := srv.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != 8 {
		t.Fatalf("pre-ingest COUNT = %g, want 8", a.Value)
	}
	if srv.Dataset() != d {
		t.Fatal("pre-ingest Dataset() should hand back the construction dataset")
	}
	v0 := srv.Version()
	for i := 0; i < 100; i++ {
		if err := srv.Ingest(float64(i), "new", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Rows() != 108 || srv.Version() != v0+100 {
		t.Fatalf("rows=%d version=%d after ingest, want 108/%d", srv.Rows(), srv.Version(), v0+100)
	}
	// The identical query re-asked must see the new rows — a stale cache
	// hit here is exactly what the versioned cache key rules out.
	a, err = srv.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != 108 {
		t.Fatalf("post-ingest COUNT = %g, want 108 (stale cached answer?)", a.Value)
	}
	got := srv.Dataset()
	if got == d {
		t.Fatal("post-ingest Dataset() returned the stale construction handle")
	}
	if got.Rows() != 108 || d.Rows() != 8 {
		t.Fatalf("materialized rows=%d, original rows=%d; want 108/8", got.Rows(), d.Rows())
	}
	if got.Cat(107, got.Index("tag")) != "new" {
		t.Fatal("materialized dataset missing ingested values")
	}
}

// TestNoiseIndependentAcrossVersions pins the fix for the cross-ingest
// differencing leak: every noise derivation (perturbation, camouflage, dp)
// keys on the snapshot version, so asking the same query before and after
// an Ingest draws independent noise — the difference of the two answers
// must NOT equal the exact aggregate contribution of the ingested rows.
// (With the old version-free keys it always did: v1+nz and v2+nz difference
// to v2−v1 with zero noise, even though under DP ε was charged twice.)
// Repeats within one version must still re-release identically.
func TestNoiseIndependentAcrossVersions(t *testing.T) {
	q := Query{Agg: Sum, Attr: "v", Where: Predicate{{Col: "x", Op: Ge, V: 0}}}
	configs := []Config{
		{Protection: Perturbation, Seed: 11, SegmentSize: 64},
		{Protection: Camouflage, Seed: 11, SegmentSize: 64},
		{Protection: DifferentialPrivacy, Seed: 11, SegmentSize: 64, Epsilon: 0.5, EpsilonBudget: 10},
	}
	for _, cfg := range configs {
		srv, err := NewServer(mixedDataset(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		truth1, err := q.Evaluate(srv.Dataset())
		if err != nil {
			t.Fatal(err)
		}
		a1, err := srv.AskAs("alice", q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := srv.Ingest(1.0, "new", 50.0); err != nil {
				t.Fatal(err)
			}
		}
		truth2, err := q.Evaluate(srv.Dataset())
		if err != nil {
			t.Fatal(err)
		}
		a2, err := srv.AskAs("alice", q)
		if err != nil {
			t.Fatal(err)
		}
		released := func(a Answer) float64 {
			if a.Interval {
				return (a.Lo + a.Hi) / 2 // camouflage: the midpoint carries the offset
			}
			return a.Value
		}
		if released(a2)-released(a1) == truth2-truth1 {
			t.Errorf("%v: answers across an Ingest difference to the exact ingested contribution %g — noise reused across versions",
				cfg.Protection, truth2-truth1)
		}
		// Within one version, a repeat is still the identical re-release.
		a3, err := srv.AskAs("alice", q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(released(a3)) != math.Float64bits(released(a2)) {
			t.Errorf("%v: repeat at one version released %x then %x", cfg.Protection, math.Float64bits(released(a2)), math.Float64bits(released(a3)))
		}
	}
}

// TestZeroValueCondCompat pins the compile lenience for hand-built library
// conditions: Cond{Col: catCol, Op: Eq} (all fields zero) compiles as an
// empty-string comparison — the behavior Predicate.Match had before Str
// existed — on both the library evaluator and the server's index path,
// while a non-zero V stays a kind-mismatch error.
func TestZeroValueCondCompat(t *testing.T) {
	d := mixedDataset()
	zero := Predicate{{Col: "tag", Op: Eq}}
	rows, err := zero.QuerySet(d)
	if err != nil {
		t.Fatalf("zero-valued categorical cond rejected: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("QuerySet matched %d rows, want the 3 empty-tag rows", len(rows))
	}
	for _, forceScan := range []bool{false, true} {
		srv, err := NewServer(d, Config{Protection: NoProtection, SegmentSize: 64, ForceScan: forceScan})
		if err != nil {
			t.Fatal(err)
		}
		a, err := srv.Ask(Query{Agg: Count, Where: zero})
		if err != nil {
			t.Fatalf("forceScan=%v: %v", forceScan, err)
		}
		if a.Value != 3 {
			t.Errorf("forceScan=%v: COUNT = %g, want 3", forceScan, a.Value)
		}
	}
	// Ne complement and the surviving error case.
	if rows, err = (Predicate{{Col: "tag", Op: Ne}}).QuerySet(d); err != nil || len(rows) != 5 {
		t.Errorf("Ne zero-valued cond: rows=%d err=%v, want 5 rows", len(rows), err)
	}
	if _, err := (Predicate{{Col: "tag", Op: Eq, V: 7}}).Compile(d.Attrs()); err == nil {
		t.Error("non-zero numeric value against categorical column accepted")
	}
}

// TestAuditedConsistentUnderIngest pins the snapshot semantics the auditor
// needs: audited answers stay self-consistent while the database grows
// mid-stream — the indicator system mixes vector widths across versions
// without panicking or losing the disclosure property.
func TestAuditedConsistentUnderIngest(t *testing.T) {
	d := mixedDataset()
	srv, err := NewServer(d, Config{Protection: Auditing, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// SUM over x >= 1 (5 records) answers fine at version 0.
	a, err := srv.Ask(Query{Agg: Sum, Attr: "v", Where: Predicate{{Col: "x", Op: Ge, V: 1}}})
	if err != nil || a.Denied {
		t.Fatalf("first audited sum: %+v, %v", a, err)
	}
	for i := 0; i < 50; i++ {
		if err := srv.Ingest(100+float64(i), "grown", 1000+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A query isolating one record must still be caught after growth —
	// x = 1 matches exactly one original record.
	a, err = srv.Ask(Query{Agg: Sum, Attr: "v", Where: Predicate{{Col: "x", Op: Eq, V: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Denied {
		t.Fatal("auditing answered a single-record sum after ingest")
	}
	// A broad query over the grown database still answers.
	a, err = srv.Ask(Query{Agg: Sum, Attr: "v", Where: Predicate{{Col: "x", Op: Ge, V: 0}}})
	if err != nil || a.Denied {
		t.Fatalf("broad audited sum after ingest: %+v, %v", a, err)
	}
}

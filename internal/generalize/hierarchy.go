// Package generalize implements k-anonymization through generalization and
// suppression, the masking family of Samarati & Sweeney (1998) and the
// "k-anonymity: algorithms and hardness" line of work the paper cites as
// [2]: value generalization hierarchies, global recoding over a
// generalization lattice, local suppression, and Mondrian-style
// multidimensional partitioning for numeric attributes.
package generalize

import (
	"fmt"
	"math"
)

// Hierarchy is a value generalization hierarchy for one attribute.
//
// Levels run from 0 to Levels()-1: level 0 is the original value, each
// higher level is more general, and the top level suppresses the value to
// "*". Categorical hierarchies are given as explicit per-level maps; numeric
// hierarchies recode values into intervals whose width doubles per level.
type Hierarchy struct {
	// Name of the attribute the hierarchy applies to.
	Name string
	// levels[l] maps a base value to its generalization at level l+1
	// (categorical hierarchies only).
	levels []map[string]string
	// Interval hierarchies (numeric attributes).
	numeric bool
	base    float64 // interval width at level 1
	min     float64 // alignment origin for intervals
	total   int     // total number of levels including 0 and the "*" top
}

// NewCategoricalHierarchy builds a hierarchy from explicit per-level maps.
// maps[l] gives the generalization of each base value at level l+1; every
// base value must appear in every map. A final "*" suppression level is
// added implicitly.
func NewCategoricalHierarchy(name string, baseValues []string, maps []map[string]string) (*Hierarchy, error) {
	for l, m := range maps {
		for _, v := range baseValues {
			if _, ok := m[v]; !ok {
				return nil, fmt.Errorf("generalize: hierarchy %q level %d misses value %q", name, l+1, v)
			}
		}
	}
	return &Hierarchy{
		Name:   name,
		levels: append([]map[string]string(nil), maps...),
		total:  len(maps) + 2, // identity + maps + "*"
	}, nil
}

// NewNumericHierarchy builds an interval hierarchy for a numeric attribute:
// level l ∈ [1, intervalLevels] recodes v into the interval of width
// base·2^(l-1) containing it, aligned at min. A final "*" suppression level
// is added implicitly.
func NewNumericHierarchy(name string, min, base float64, intervalLevels int) (*Hierarchy, error) {
	if base <= 0 || intervalLevels < 1 {
		return nil, fmt.Errorf("generalize: numeric hierarchy %q needs base > 0 and intervalLevels ≥ 1", name)
	}
	return &Hierarchy{
		Name: name, numeric: true, base: base, min: min,
		total: intervalLevels + 2, // identity + intervals + "*"
	}, nil
}

// Levels returns the total number of levels (identity through "*").
func (h *Hierarchy) Levels() int { return h.total }

// Numeric reports whether the hierarchy is interval-based.
func (h *Hierarchy) Numeric() bool { return h.numeric }

// GeneralizeString recodes a base categorical value to the given level.
// Levels at or above the top return "*"; unknown values generalize to "*".
func (h *Hierarchy) GeneralizeString(v string, level int) string {
	if level <= 0 {
		return v
	}
	if level >= h.total-1 || level-1 >= len(h.levels) {
		return "*"
	}
	if g, ok := h.levels[level-1][v]; ok {
		return g
	}
	return "*"
}

// GeneralizeFloat recodes a numeric value to the interval label of the given
// level; level 0 renders the exact value, the top level returns "*".
func (h *Hierarchy) GeneralizeFloat(v float64, level int) string {
	if level <= 0 {
		return fmt.Sprintf("%g", v)
	}
	if !h.numeric || level >= h.total-1 {
		return "*"
	}
	w := h.base * math.Pow(2, float64(level-1))
	lo := h.min + math.Floor((v-h.min)/w)*w
	return fmt.Sprintf("[%g,%g)", lo, lo+w)
}

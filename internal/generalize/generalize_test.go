package generalize

import (
	"strings"
	"testing"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/dataset"
)

func TestNumericHierarchyLevels(t *testing.T) {
	h, err := NewNumericHierarchy("height", 100, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 4 { // identity, width-5, width-10, "*"
		t.Fatalf("Levels = %d, want 4", h.Levels())
	}
	if got := h.GeneralizeFloat(172, 0); got != "172" {
		t.Errorf("level 0 = %q", got)
	}
	if got := h.GeneralizeFloat(172, 1); got != "[170,175)" {
		t.Errorf("level 1 = %q", got)
	}
	if got := h.GeneralizeFloat(172, 2); got != "[170,180)" {
		t.Errorf("level 2 = %q", got)
	}
	if got := h.GeneralizeFloat(172, 3); got != "*" {
		t.Errorf("top level = %q", got)
	}
	if _, err := NewNumericHierarchy("x", 0, 0, 1); err == nil {
		t.Error("accepted base = 0")
	}
	if _, err := NewNumericHierarchy("x", 0, 1, 0); err == nil {
		t.Error("accepted 0 interval levels")
	}
}

func TestCategoricalHierarchy(t *testing.T) {
	base := []string{"flu", "cold", "hiv"}
	maps := []map[string]string{
		{"flu": "respiratory", "cold": "respiratory", "hiv": "viral"},
	}
	h, err := NewCategoricalHierarchy("dx", base, maps)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 3 {
		t.Fatalf("Levels = %d, want 3", h.Levels())
	}
	if got := h.GeneralizeString("flu", 1); got != "respiratory" {
		t.Errorf("level 1 = %q", got)
	}
	if got := h.GeneralizeString("flu", 2); got != "*" {
		t.Errorf("top = %q", got)
	}
	if got := h.GeneralizeString("unknown", 1); got != "*" {
		t.Errorf("unknown value = %q, want *", got)
	}
	if _, err := NewCategoricalHierarchy("dx", base, []map[string]string{{"flu": "x"}}); err == nil {
		t.Error("accepted incomplete level map")
	}
}

func trialHierarchies(d *dataset.Dataset) map[int]*Hierarchy {
	hh, _ := NewNumericHierarchy("height", 100, 10, 3)
	hw, _ := NewNumericHierarchy("weight", 0, 10, 3)
	return map[int]*Hierarchy{
		d.Index("height"): hh,
		d.Index("weight"): hw,
	}
}

func TestRecode(t *testing.T) {
	d := dataset.Dataset2()
	qi := d.QuasiIdentifiers()
	out, err := Recode(d, qi, trialHierarchies(d), []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attr(0).Kind != dataset.Nominal {
		t.Error("recoded QI should be nominal")
	}
	if got := out.Cat(0, 0); !strings.HasPrefix(got, "[") {
		t.Errorf("recoded value = %q, want interval", got)
	}
	// Confidential columns untouched.
	if out.Float(0, 2) != 146 {
		t.Errorf("confidential value changed: %v", out.Float(0, 2))
	}
	// Errors.
	if _, err := Recode(d, qi, trialHierarchies(d), []int{1}); err == nil {
		t.Error("accepted wrong level count")
	}
	if _, err := Recode(d, qi, trialHierarchies(d), []int{99, 0}); err == nil {
		t.Error("accepted out-of-range level")
	}
	if _, err := Recode(d, qi, map[int]*Hierarchy{}, []int{0, 0}); err == nil {
		t.Error("accepted missing hierarchy")
	}
}

func TestSuppressSmallClasses(t *testing.T) {
	d := dataset.Dataset2()
	qi := d.QuasiIdentifiers()
	kept, suppressed := SuppressSmallClasses(d, qi, 2)
	if suppressed == 0 {
		t.Fatal("Dataset2 has singletons; suppression expected")
	}
	if kept.Rows()+suppressed != d.Rows() {
		t.Errorf("rows %d + suppressed %d != %d", kept.Rows(), suppressed, d.Rows())
	}
	if k := anonymity.K(kept, qi); k < 2 {
		t.Errorf("after suppression k = %d, want ≥ 2", k)
	}
}

func TestAnonymizeDataset2(t *testing.T) {
	// The paper's Dataset 2 is not 3-anonymous; lattice anonymization must
	// find a minimal generalization that makes it so.
	d := dataset.Dataset2()
	qi := d.QuasiIdentifiers()
	out, res, err := Anonymize(d, qi, trialHierarchies(d), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !anonymity.IsKAnonymous(out, qi, 3) {
		t.Error("result not 3-anonymous")
	}
	if res.Height == 0 {
		t.Error("Dataset2 should need some generalization")
	}
	if res.Suppressed != 0 {
		t.Errorf("suppressed %d with maxSuppress 0", res.Suppressed)
	}
	// Minimality: no vector of smaller height works. Re-check directly at
	// height-1 by exhaustive enumeration.
	maxLv := []int{4 - 1, 4 - 1} // both hierarchies have 5 levels? no: 3 interval levels + id + * = 5
	_ = maxLv
	for h := 0; h < res.Height; h++ {
		for _, lv := range vectorsOfHeight([]int{4, 4}, h) {
			rec, err := Recode(d, qi, trialHierarchies(d), lv)
			if err != nil {
				continue
			}
			if anonymity.IsKAnonymous(rec, qi, 3) {
				t.Errorf("height-%d vector %v already 3-anonymous; result not minimal", h, lv)
			}
		}
	}
}

func TestAnonymizeWithSuppression(t *testing.T) {
	d := dataset.Dataset2()
	qi := d.QuasiIdentifiers()
	// With a generous suppression budget, level (0,0) plus suppression may
	// suffice; the search must then prefer height 0.
	out, res, err := Anonymize(d, qi, trialHierarchies(d), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Height != 0 {
		t.Errorf("height = %d, want 0 (suppression budget covers singletons)", res.Height)
	}
	if got := anonymity.K(out, qi); got < 2 {
		t.Errorf("k = %d", got)
	}
}

func TestAnonymizeErrors(t *testing.T) {
	d := dataset.Dataset2()
	qi := d.QuasiIdentifiers()
	if _, _, err := Anonymize(d, qi, trialHierarchies(d), 0, 0); err == nil {
		t.Error("accepted k = 0")
	}
	if _, _, err := Anonymize(d, qi, map[int]*Hierarchy{}, 2, 0); err == nil {
		t.Error("accepted missing hierarchies")
	}
	// Impossible: k greater than the dataset even fully suppressed.
	if _, _, err := Anonymize(d, qi, trialHierarchies(d), d.Rows()+1, 0); err == nil {
		t.Error("accepted impossible k")
	}
}

func TestVectorsOfHeight(t *testing.T) {
	vs := vectorsOfHeight([]int{2, 2}, 2)
	want := [][]int{{0, 2}, {1, 1}, {2, 0}}
	if len(vs) != len(want) {
		t.Fatalf("vectors = %v", vs)
	}
	for i := range vs {
		if vs[i][0] != want[i][0] || vs[i][1] != want[i][1] {
			t.Fatalf("vectors = %v, want %v", vs, want)
		}
	}
	if n := len(vectorsOfHeight([]int{1, 1}, 5)); n != 0 {
		t.Errorf("over-height enumeration returned %d vectors", n)
	}
}

func TestPrecision(t *testing.T) {
	if p := Precision([]int{0, 0}, []int{4, 4}); p != 0 {
		t.Errorf("Precision zero = %v", p)
	}
	if p := Precision([]int{4, 4}, []int{4, 4}); p != 1 {
		t.Errorf("Precision full = %v", p)
	}
	if p := Precision([]int{2, 0}, []int{4, 4}); p != 0.25 {
		t.Errorf("Precision half-one = %v", p)
	}
}

func TestMondrianGroups(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 321, Seed: 8})
	data := d.NumericMatrix(d.QuasiIdentifiers())
	for _, k := range []int{2, 5, 11} {
		groups, err := MondrianGroups(data, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		seen := map[int]bool{}
		for _, g := range groups {
			if len(g) < k {
				t.Errorf("k=%d: group of size %d", k, len(g))
			}
			for _, i := range g {
				if seen[i] {
					t.Fatalf("duplicate row %d", i)
				}
				seen[i] = true
			}
		}
		if len(seen) != len(data) {
			t.Errorf("k=%d: covered %d of %d", k, len(seen), len(data))
		}
	}
	if _, err := MondrianGroups(data, 1); err == nil {
		t.Error("accepted k = 1")
	}
	if _, err := MondrianGroups(data[:2], 5); err == nil {
		t.Error("accepted n < k")
	}
}

func TestMondrianMask(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 200, Seed: 21})
	qi := d.QuasiIdentifiers()
	out, groups, err := MondrianMask(d, qi, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := anonymity.K(out, qi); got < 4 {
		t.Errorf("masked k = %d, want ≥ 4", got)
	}
	il := MondrianIL(d.NumericMatrix(qi), groups)
	if il <= 0 || il >= 1 {
		t.Errorf("Mondrian IL = %v, want in (0,1)", il)
	}
	// Categorical QI rejected.
	bad := dataset.New(dataset.Attribute{Name: "c", Role: dataset.QuasiIdentifier, Kind: dataset.Nominal})
	bad.MustAppend("x")
	if _, _, err := MondrianMask(bad, []int{0}, 2); err == nil {
		t.Error("accepted categorical quasi-identifier")
	}
}

func TestMondrianFinerThanCoarser(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 300, Seed: 4})
	data := d.NumericMatrix(d.QuasiIdentifiers())
	g2, _ := MondrianGroups(data, 2)
	g20, _ := MondrianGroups(data, 20)
	if MondrianIL(data, g2) > MondrianIL(data, g20) {
		t.Error("finer partition should lose less information")
	}
}

package generalize

import (
	"fmt"
	"sort"

	"privacy3d/internal/dataset"
)

// Recode applies the given generalization level to each quasi-identifier
// column, producing a dataset where those columns become Nominal string
// columns holding generalized labels. hierarchies maps QI column index (in
// d) to its hierarchy; levels is parallel to qiCols.
func Recode(d *dataset.Dataset, qiCols []int, hierarchies map[int]*Hierarchy, levels []int) (*dataset.Dataset, error) {
	if len(levels) != len(qiCols) {
		return nil, fmt.Errorf("generalize: %d levels for %d quasi-identifier columns", len(levels), len(qiCols))
	}
	for idx, j := range qiCols {
		h, ok := hierarchies[j]
		if !ok {
			return nil, fmt.Errorf("generalize: no hierarchy for column %q", d.Attr(j).Name)
		}
		if levels[idx] < 0 || levels[idx] >= h.Levels() {
			return nil, fmt.Errorf("generalize: level %d out of range [0,%d) for %q", levels[idx], h.Levels(), d.Attr(j).Name)
		}
	}
	// Build the output schema: QI columns become Nominal.
	attrs := append([]dataset.Attribute(nil), d.Attrs()...)
	isQI := map[int]int{}
	for idx, j := range qiCols {
		isQI[j] = idx
		attrs[j] = dataset.Attribute{Name: attrs[j].Name, Role: dataset.QuasiIdentifier, Kind: dataset.Nominal}
	}
	out := dataset.New(attrs...)
	for i := 0; i < d.Rows(); i++ {
		vals := make([]any, d.Cols())
		for j := 0; j < d.Cols(); j++ {
			idx, qi := isQI[j]
			if !qi {
				vals[j] = d.Value(i, j)
				continue
			}
			h := hierarchies[j]
			if d.Attr(j).Kind == dataset.Numeric {
				vals[j] = h.GeneralizeFloat(d.Float(i, j), levels[idx])
			} else {
				vals[j] = h.GeneralizeString(d.Cat(i, j), levels[idx])
			}
		}
		if err := out.Append(vals...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SuppressSmallClasses removes every record whose quasi-identifier
// equivalence class (over qiCols) has fewer than k members, returning the
// surviving dataset and the number of suppressed records. This is the
// "local suppression" companion of global recoding.
func SuppressSmallClasses(d *dataset.Dataset, qiCols []int, k int) (*dataset.Dataset, int) {
	groups := d.GroupBy(qiCols)
	var keep []int
	for _, g := range groups {
		if len(g) >= k {
			keep = append(keep, g...)
		}
	}
	// Preserve original record order.
	sort.Ints(keep)
	return d.Select(keep), d.Rows() - len(keep)
}

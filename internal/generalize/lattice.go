package generalize

import (
	"fmt"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/dataset"
)

// LatticeResult describes the minimal generalization found by Anonymize.
type LatticeResult struct {
	// Levels is the chosen generalization level per quasi-identifier
	// column (parallel to the qiCols passed in).
	Levels []int
	// Suppressed is the number of records removed by local suppression.
	Suppressed int
	// Height is the sum of levels — the lattice height of the solution,
	// the standard minimality criterion of Samarati's algorithm.
	Height int
}

// Anonymize searches the generalization lattice breadth-first by height and
// returns the first (minimum-height) level vector that makes the dataset
// k-anonymous after suppressing at most maxSuppress records. Ties at equal
// height resolve to the lexicographically smallest vector, so results are
// deterministic.
func Anonymize(d *dataset.Dataset, qiCols []int, hierarchies map[int]*Hierarchy, k, maxSuppress int) (*dataset.Dataset, LatticeResult, error) {
	if k < 1 {
		return nil, LatticeResult{}, fmt.Errorf("generalize: k must be ≥ 1, got %d", k)
	}
	maxLv := make([]int, len(qiCols))
	totalHeight := 0
	for idx, j := range qiCols {
		h, ok := hierarchies[j]
		if !ok {
			return nil, LatticeResult{}, fmt.Errorf("generalize: no hierarchy for column %q", d.Attr(j).Name)
		}
		maxLv[idx] = h.Levels() - 1
		totalHeight += maxLv[idx]
	}
	for height := 0; height <= totalHeight; height++ {
		for _, levels := range vectorsOfHeight(maxLv, height) {
			recoded, err := Recode(d, qiCols, hierarchies, levels)
			if err != nil {
				return nil, LatticeResult{}, err
			}
			kept, suppressed := SuppressSmallClasses(recoded, qiCols, k)
			if suppressed <= maxSuppress && kept.Rows() > 0 && anonymity.IsKAnonymous(kept, qiCols, k) {
				return kept, LatticeResult{Levels: levels, Suppressed: suppressed, Height: height}, nil
			}
		}
	}
	return nil, LatticeResult{}, fmt.Errorf("generalize: no generalization achieves %d-anonymity with ≤ %d suppressions", k, maxSuppress)
}

// vectorsOfHeight enumerates, in lexicographic order, every level vector
// bounded by maxLv whose components sum to height.
func vectorsOfHeight(maxLv []int, height int) [][]int {
	var out [][]int
	cur := make([]int, len(maxLv))
	var rec func(pos, remaining int)
	rec = func(pos, remaining int) {
		if pos == len(maxLv) {
			if remaining == 0 {
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		hi := maxLv[pos]
		if hi > remaining {
			hi = remaining
		}
		for v := 0; v <= hi; v++ {
			cur[pos] = v
			rec(pos+1, remaining-v)
		}
	}
	rec(0, height)
	return out
}

// Precision returns the Prec information-loss measure of a generalization:
// the average, over quasi-identifier cells, of level/maxLevel. 0 means no
// generalization, 1 means everything suppressed.
func Precision(levels []int, maxLv []int) float64 {
	if len(levels) == 0 {
		return 0
	}
	var s float64
	for i, l := range levels {
		if maxLv[i] > 0 {
			s += float64(l) / float64(maxLv[i])
		}
	}
	return s / float64(len(levels))
}

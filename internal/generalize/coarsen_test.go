package generalize

import (
	"math"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

func TestTopBottomCode(t *testing.T) {
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 1000, Dims: 1, Seed: 3})
	out, recoded, err := TopBottomCode(d, 0, 0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if recoded == 0 {
		t.Fatal("no cells recoded")
	}
	// Roughly 10% of cells clamp.
	if frac := float64(recoded) / 1000; frac < 0.05 || frac > 0.15 {
		t.Errorf("recoded fraction = %v, want ≈ 0.10", frac)
	}
	lo := stats.Quantile(d.NumColumn(0), 0.05)
	hi := stats.Quantile(d.NumColumn(0), 0.95)
	mn, mx := stats.MinMax(out.NumColumn(0))
	if mn < lo || mx > hi {
		t.Errorf("output range [%v, %v] exceeds [%v, %v]", mn, mx, lo, hi)
	}
	// Interior values untouched.
	for i := 0; i < d.Rows(); i++ {
		v := d.Float(i, 0)
		if v >= lo && v <= hi && out.Float(i, 0) != v {
			t.Fatalf("interior value changed at row %d", i)
		}
	}
}

func TestTopBottomCodeValidation(t *testing.T) {
	d := dataset.Dataset1()
	if _, _, err := TopBottomCode(d, 0, 0.9, 0.1); err == nil {
		t.Error("accepted inverted quantiles")
	}
	if _, _, err := TopBottomCode(d, d.Index("aids"), 0.05, 0.95); err == nil {
		t.Error("accepted categorical column")
	}
	empty := dataset.New(dataset.TrialSchema()...)
	if _, _, err := TopBottomCode(empty, 0, 0.05, 0.95); err == nil {
		t.Error("accepted empty dataset")
	}
}

func TestRoundTo(t *testing.T) {
	d := dataset.Dataset2()
	out, err := RoundTo(d, []int{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.Rows(); i++ {
		for _, j := range []int{0, 1} {
			v := out.Float(i, j)
			if math.Mod(v, 10) != 0 {
				t.Fatalf("value %v not a multiple of 10", v)
			}
			if math.Abs(v-d.Float(i, j)) > 5 {
				t.Fatalf("rounding moved %v → %v", d.Float(i, j), v)
			}
		}
	}
	// Rounding coarsens quasi-identifiers: anonymity cannot decrease.
	if _, err := RoundTo(d, []int{0}, 0); err == nil {
		t.Error("accepted base 0")
	}
	if _, err := RoundTo(d, []int{d.Index("aids")}, 10); err == nil {
		t.Error("accepted categorical column")
	}
}

package generalize

import (
	"fmt"
	"sort"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// MondrianGroups recursively partitions the rows of a numeric matrix by
// median cuts on the dimension of widest (range-normalised) spread, stopping
// when a cut would leave a side with fewer than k records. The result is a
// k-anonymous multidimensional partition (LeFevre et al.'s Mondrian, the
// style of multidimensional recoding covered by the paper's citation [2]).
func MondrianGroups(data [][]float64, k int) ([][]int, error) {
	if err := validateMondrian(len(data), k); err != nil {
		return nil, err
	}
	all := make([]int, len(data))
	for i := range all {
		all[i] = i
	}
	// Global ranges for normalising spread comparisons.
	dims := len(data[0])
	gmin, gmax := colRanges(data, all, dims)
	var groups [][]int
	var split func(rows []int)
	split = func(rows []int) {
		if len(rows) < 2*k {
			g := append([]int(nil), rows...)
			sort.Ints(g)
			groups = append(groups, g)
			return
		}
		lmin, lmax := colRanges(data, rows, dims)
		// Widest normalised dimension.
		best, bestSpread := -1, 0.0
		for j := 0; j < dims; j++ {
			denom := gmax[j] - gmin[j]
			if denom == 0 {
				continue
			}
			if s := (lmax[j] - lmin[j]) / denom; s > bestSpread {
				best, bestSpread = j, s
			}
		}
		if best < 0 { // all values identical; cannot cut
			g := append([]int(nil), rows...)
			sort.Ints(g)
			groups = append(groups, g)
			return
		}
		// Median cut on dimension best.
		sorted := append([]int(nil), rows...)
		sort.SliceStable(sorted, func(a, b int) bool { return data[sorted[a]][best] < data[sorted[b]][best] })
		mid := len(sorted) / 2
		// Keep equal values on one side to get a well-defined cut.
		cutVal := data[sorted[mid]][best]
		lo := mid
		for lo > 0 && data[sorted[lo-1]][best] == cutVal {
			lo--
		}
		hi := mid
		for hi < len(sorted) && data[sorted[hi]][best] == cutVal {
			hi++
		}
		left, right := sorted[:mid], sorted[mid:]
		if lo >= k && len(sorted)-lo >= k {
			left, right = sorted[:lo], sorted[lo:]
		} else if hi >= k && len(sorted)-hi >= k {
			left, right = sorted[:hi], sorted[hi:]
		}
		if len(left) < k || len(right) < k {
			g := append([]int(nil), rows...)
			sort.Ints(g)
			groups = append(groups, g)
			return
		}
		split(left)
		split(right)
	}
	split(all)
	return groups, nil
}

func validateMondrian(n, k int) error {
	if k < 2 {
		return fmt.Errorf("generalize: Mondrian needs k ≥ 2, got %d", k)
	}
	if n < k {
		return fmt.Errorf("generalize: Mondrian has %d records, need at least k=%d", n, k)
	}
	return nil
}

func colRanges(data [][]float64, rows []int, dims int) (mins, maxs []float64) {
	mins = make([]float64, dims)
	maxs = make([]float64, dims)
	for j := 0; j < dims; j++ {
		mins[j], maxs[j] = data[rows[0]][j], data[rows[0]][j]
	}
	for _, i := range rows[1:] {
		for j := 0; j < dims; j++ {
			if data[i][j] < mins[j] {
				mins[j] = data[i][j]
			}
			if data[i][j] > maxs[j] {
				maxs[j] = data[i][j]
			}
		}
	}
	return mins, maxs
}

// MondrianMask k-anonymizes the numeric quasi-identifier columns of d by
// Mondrian partitioning, recoding each partition's values to interval
// labels "[lo,hi]" (the columns become Nominal). It returns the masked
// dataset and the partition.
func MondrianMask(d *dataset.Dataset, qiCols []int, k int) (*dataset.Dataset, [][]int, error) {
	for _, j := range qiCols {
		if d.Attr(j).Kind != dataset.Numeric {
			return nil, nil, fmt.Errorf("generalize: Mondrian requires numeric quasi-identifiers; %q is %v", d.Attr(j).Name, d.Attr(j).Kind)
		}
	}
	data := d.NumericMatrix(qiCols)
	groups, err := MondrianGroups(data, k)
	if err != nil {
		return nil, nil, err
	}
	attrs := append([]dataset.Attribute(nil), d.Attrs()...)
	for _, j := range qiCols {
		attrs[j] = dataset.Attribute{Name: attrs[j].Name, Role: dataset.QuasiIdentifier, Kind: dataset.Nominal}
	}
	out := dataset.New(attrs...)
	labels := make([]string, d.Rows()*len(qiCols))
	label := func(i, jj int) *string { return &labels[i*len(qiCols)+jj] }
	for _, g := range groups {
		mins, maxs := colRanges(data, g, len(qiCols))
		for jj := range qiCols {
			lab := fmt.Sprintf("[%g,%g]", mins[jj], maxs[jj])
			for _, i := range g {
				*label(i, jj) = lab
			}
		}
	}
	qiPos := map[int]int{}
	for jj, j := range qiCols {
		qiPos[j] = jj
	}
	for i := 0; i < d.Rows(); i++ {
		vals := make([]any, d.Cols())
		for j := 0; j < d.Cols(); j++ {
			if jj, ok := qiPos[j]; ok {
				vals[j] = *label(i, jj)
			} else {
				vals[j] = d.Value(i, j)
			}
		}
		if err := out.Append(vals...); err != nil {
			return nil, nil, err
		}
	}
	return out, groups, nil
}

// MondrianIL returns the normalised within-partition sum of squared errors
// of a Mondrian partition in standardised space, comparable to
// microaggregation's IL measure.
func MondrianIL(data [][]float64, groups [][]int) float64 {
	z, _, _ := stats.Standardize(data)
	var sse, sst float64
	grand := stats.ColumnMeans(z)
	for _, row := range z {
		sse0 := stats.SquaredDist(row, grand)
		sst += sse0
	}
	for _, g := range groups {
		sub := make([][]float64, len(g))
		for t, i := range g {
			sub[t] = z[i]
		}
		c := stats.ColumnMeans(sub)
		for _, row := range sub {
			sse += stats.SquaredDist(row, c)
		}
	}
	if sst == 0 {
		return 0
	}
	return sse / sst
}

package generalize

import (
	"fmt"
	"math"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// Non-perturbative coarsening maskings from the SDC handbook (Hundepool et
// al., the paper's [17]): top/bottom coding collapses the tails of a
// numeric attribute (where outliers — the most identifiable respondents —
// live) and rounding publishes values on a coarse lattice.

// TopBottomCode clamps a numeric column at its lowerQ and upperQ quantiles
// (e.g. 0.05 and 0.95): values below/above are recoded to the quantile
// itself. It returns the masked clone and the number of recoded cells.
func TopBottomCode(d *dataset.Dataset, col int, lowerQ, upperQ float64) (*dataset.Dataset, int, error) {
	if d.Rows() == 0 {
		return nil, 0, fmt.Errorf("generalize: empty dataset")
	}
	if !(0 <= lowerQ && lowerQ < upperQ && upperQ <= 1) {
		return nil, 0, fmt.Errorf("generalize: need 0 ≤ lowerQ < upperQ ≤ 1, got %g and %g", lowerQ, upperQ)
	}
	if d.Attr(col).Kind != dataset.Numeric {
		return nil, 0, fmt.Errorf("generalize: column %q is not numeric", d.Attr(col).Name)
	}
	x := d.NumColumn(col)
	lo := stats.Quantile(x, lowerQ)
	hi := stats.Quantile(x, upperQ)
	out := d.Clone()
	oc := out.NumColumn(col)
	recoded := 0
	for i, v := range oc {
		switch {
		case v < lo:
			oc[i] = lo
			recoded++
		case v > hi:
			oc[i] = hi
			recoded++
		}
	}
	return out, recoded, nil
}

// RoundTo publishes the given numeric columns rounded to the nearest
// multiple of base (e.g. salaries to the nearest 1000).
func RoundTo(d *dataset.Dataset, cols []int, base float64) (*dataset.Dataset, error) {
	if base <= 0 {
		return nil, fmt.Errorf("generalize: rounding base must be > 0, got %g", base)
	}
	for _, j := range cols {
		if d.Attr(j).Kind != dataset.Numeric {
			return nil, fmt.Errorf("generalize: column %q is not numeric", d.Attr(j).Name)
		}
	}
	out := d.Clone()
	for _, j := range cols {
		oc := out.NumColumn(j)
		for i, v := range oc {
			oc[i] = math.Round(v/base) * base
		}
	}
	return out, nil
}

// Command benchpir is the benchmark gate of the word-parallel PIR
// answering engine: it times the IT-PIR answer kernel, the CPIR answer
// kernel and the end-to-end Section 3 RangeStats scenario on a large
// synthetic database across worker counts, verifies that every parallel
// answer is byte-identical to the workers=1 sequential reference, and
// writes the perf trajectory to a JSON file (BENCH_pir.json via make
// bench).
//
//	benchpir -blocks 65536 -blocksize 1024 -workers 1,2,4,8 -out BENCH_pir.json
//
// The default database is 64 MiB — PIR servers scan all of it on every
// query by design, so this is the system's hottest path. The tool also
// times the seed's byte-at-a-time XOR kernel on the same workload and
// reports the word-packing speedup at workers=1. It exits non-zero if any
// parallel answer differs from the sequential reference — determinism is
// a hard gate. Speedup across workers scales with physical cores (a
// single-CPU machine is flagged in the JSON and on stderr).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/big"
	"math/rand/v2"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
	"privacy3d/internal/pir"
)

// Entry is one (kernel, workers) measurement.
type Entry struct {
	Kernel  string `json:"kernel"`
	Workers int    `json:"workers"`
	// DBBytes is the database volume the kernel touches per answer.
	DBBytes int64 `json:"db_bytes"`
	NsOp    int64 `json:"ns_op"`
	// ThroughputMiBs is DBBytes/op over wall-clock, the engine's headline
	// number (only meaningful for the database-scan kernels).
	ThroughputMiBs float64 `json:"throughput_mib_s,omitempty"`
	// SpeedupVsWorkers1 is wall-clock of the workers=1 run divided by this
	// run's, on identical input.
	SpeedupVsWorkers1 float64 `json:"speedup_vs_workers1"`
	// SpeedupVsBytewise compares the workers=1 word kernel against the
	// seed's byte-at-a-time kernel (set on the itpir_answer workers=1 row).
	SpeedupVsBytewise float64 `json:"speedup_vs_bytewise,omitempty"`
	// IdenticalToWorkers1 records byte-identity of this run's answer
	// against the sequential reference (always true, or the tool fails).
	IdenticalToWorkers1 bool `json:"identical_to_workers1"`
	// Checksum is a drift canary over the answer bytes.
	Checksum uint64 `json:"checksum"`
}

// Report is the BENCH_pir.json document.
type Report struct {
	Date       string `json:"date"`
	Blocks     int    `json:"blocks"`
	BlockSize  int    `json:"block_size"`
	CPIRBits   int    `json:"cpir_bits"`
	StatRows   int    `json:"stat_rows"`
	Seed       uint64 `json:"seed"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Warning flags measurement conditions under which the speedup columns
	// are not meaningful (e.g. a single-CPU machine).
	Warning string       `json:"warning,omitempty"`
	Entries []Entry      `json:"entries"`
	Scaling *ScalingGate `json:"scaling,omitempty"`
}

// ScalingGate records the worker-scaling requirement on the itpir_answer
// kernel: on a multi-core machine, the max-workers run must beat the
// workers=1 reference by at least -minscaling×. On a single-CPU machine the
// gate degrades to the report warning.
type ScalingGate struct {
	Kernel     string  `json:"kernel"`
	MaxWorkers int     `json:"max_workers"`
	Scaling    float64 `json:"scaling"`
	MinScaling float64 `json:"min_scaling"`
	Enforced   bool    `json:"enforced"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchpir: ")
	blocks := flag.Int("blocks", 65536, "IT-PIR database blocks")
	blockSize := flag.Int("blocksize", 1024, "IT-PIR block size in bytes (blocks×blocksize ≥ 64 MiB for the real gate)")
	cpirBits := flag.Int("cpirbits", 1<<18, "CPIR database size in bits")
	statRows := flag.Int("statrows", 20000, "synthetic dataset rows for the RangeStats scenario")
	workersList := flag.String("workers", "1,2,4,8", "comma-separated worker counts; must start with 1")
	seed := flag.Uint64("seed", 20070923, "PRNG seed for the synthetic workload")
	iters := flag.Int("iters", 3, "timing iterations per point (minimum is reported)")
	out := flag.String("out", "BENCH_pir.json", "output JSON file")
	minWordSpeedup := flag.Float64("minwordspeedup", 0,
		"fail unless the workers=1 word kernel beats the byte-wise kernel by this factor (0 = report only)")
	minScaling := flag.Float64("minscaling", 2,
		"required itpir_answer speedup at max workers vs workers=1 (skipped on single-CPU machines; 0 = report only)")
	flag.Parse()
	if err := run(*blocks, *blockSize, *cpirBits, *statRows, *workersList, *seed, *iters, *out, *minWordSpeedup, *minScaling); err != nil {
		log.Fatal(err)
	}
}

func parseWorkers(s string) ([]int, error) {
	var ws []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		ws = append(ws, w)
	}
	if len(ws) == 0 || ws[0] != 1 {
		return nil, fmt.Errorf("-workers must start with 1 (the sequential reference), got %q", s)
	}
	return ws, nil
}

// cpuWarning returns the single-CPU caveat, or "" on multi-core machines.
func cpuWarning() string {
	if runtime.NumCPU() > 1 {
		return ""
	}
	return "single-CPU machine: parallel speedups are ≈ 1.0 by construction and measure scheduling overhead, not scaling"
}

// checksum folds answer bytes into a drift canary (FNV-1a).
func checksum(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// kernel is one timed hot path. run returns the canonical answer bytes for
// the byte-identity gate.
type kernel struct {
	name    string
	dbBytes int64
	run     func() ([]byte, error)
}

// timeKernel runs k.run iters times, returning the minimum wall-clock and
// the (identical every iteration) answer bytes.
func timeKernel(k kernel, iters int) (int64, []byte, error) {
	var best int64
	var answer []byte
	for i := 0; i < iters; i++ {
		start := time.Now()
		ans, err := k.run()
		elapsed := time.Since(start).Nanoseconds()
		if err != nil {
			return 0, nil, err
		}
		if i == 0 || elapsed < best {
			best = elapsed
		}
		answer = ans
	}
	return best, answer, nil
}

func run(blocks, blockSize, cpirBits, statRows int, workersList string, seed uint64, iters int, out string, minWordSpeedup, minScaling float64) error {
	ws, err := parseWorkers(workersList)
	if err != nil {
		return err
	}
	if blocks < 1 || blockSize < 1 || cpirBits < 1 || statRows < 1 || iters < 1 {
		return fmt.Errorf("-blocks, -blocksize, -cpirbits, -statrows and -iters must all be ≥ 1")
	}
	dbBytes := int64(blocks) * int64(blockSize)
	log.Printf("generating %d × %d B IT-PIR database (%.1f MiB, seed %d)",
		blocks, blockSize, float64(dbBytes)/(1<<20), seed)
	rng := dataset.NewRand(seed)
	rawBlocks := make([][]byte, blocks)
	for i := range rawBlocks {
		b := make([]byte, blockSize)
		for j := 0; j+8 <= blockSize; j += 8 {
			v := rng.Uint64()
			for o := 0; o < 8; o++ {
				b[j+o] = byte(v >> (8 * o))
			}
		}
		for j := blockSize &^ 7; j < blockSize; j++ {
			b[j] = byte(rng.Uint64())
		}
		rawBlocks[i] = b
	}
	itServer, err := pir.NewITServer(rawBlocks)
	if err != nil {
		return err
	}
	subset := make([]byte, (blocks+7)/8)
	for j := range subset {
		subset[j] = byte(rng.Uint64())
	}
	if blocks%8 != 0 {
		subset[len(subset)-1] &= byte(1<<(blocks%8)) - 1
	}

	cpirServer, cpirQuery, cpirN, err := buildCPIRWorkload(cpirBits, rng)
	if err != nil {
		return err
	}
	cpirRows, cpirCols := cpirServer.Shape()

	_, statQuery, err := buildStatWorkload(statRows, seed)
	if err != nil {
		return err
	}

	kernels := []kernel{
		{
			name: "itpir_answer", dbBytes: dbBytes,
			run: func() ([]byte, error) { return itServer.Answer(subset) },
		},
		{
			name: "cpir_answer", dbBytes: int64(cpirRows) * int64(cpirCols) / 8,
			run: func() ([]byte, error) {
				zs, err := cpirServer.Answer(cpirQuery, cpirN)
				if err != nil {
					return nil, err
				}
				var buf []byte
				for _, z := range zs {
					b := z.Bytes()
					buf = append(buf, byte(len(b)), byte(len(b)>>8))
					buf = append(buf, b...)
				}
				return buf, nil
			},
		},
		{
			name: "range_stats", dbBytes: 0,
			run: statQuery,
		},
	}

	report := Report{
		Date: time.Now().UTC().Format(time.RFC3339),
		Blocks: blocks, BlockSize: blockSize, CPIRBits: cpirBits, StatRows: statRows,
		Seed: seed, GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Warning: cpuWarning(),
	}
	if report.Warning != "" {
		log.Printf("WARNING: %s", report.Warning)
	}
	prev := par.SetWorkers(0)
	defer par.SetWorkers(prev)

	// Baseline: the seed's byte-at-a-time kernel on the identical subset.
	par.SetWorkers(1)
	byteKernel := kernel{name: "itpir_answer_bytewise", dbBytes: dbBytes,
		run: func() ([]byte, error) { return bytewiseAnswer(rawBlocks, subset), nil }}
	byteNs, byteAns, err := timeKernel(byteKernel, iters)
	if err != nil {
		return err
	}
	report.Entries = append(report.Entries, Entry{
		Kernel: byteKernel.name, Workers: 1, DBBytes: dbBytes, NsOp: byteNs,
		ThroughputMiBs:    mibs(dbBytes, byteNs),
		SpeedupVsWorkers1: 1, IdenticalToWorkers1: true, Checksum: checksum(byteAns),
	})
	log.Printf("%-22s workers=%-2d %12s  %8.0f MiB/s  (seed reference kernel)",
		byteKernel.name, 1, time.Duration(byteNs), mibs(dbBytes, byteNs))

	var wordBaseNs int64
	for _, k := range kernels {
		var baseNs int64
		var baseAns []byte
		for _, w := range ws {
			par.SetWorkers(w)
			ns, ans, err := timeKernel(k, iters)
			if err != nil {
				return fmt.Errorf("%s workers=%d: %w", k.name, w, err)
			}
			e := Entry{
				Kernel: k.name, Workers: w, DBBytes: k.dbBytes, NsOp: ns,
				ThroughputMiBs:    mibs(k.dbBytes, ns),
				SpeedupVsWorkers1: 1, IdenticalToWorkers1: true, Checksum: checksum(ans),
			}
			if w == 1 {
				baseNs, baseAns = ns, ans
				if k.name == "itpir_answer" {
					wordBaseNs = ns
					e.SpeedupVsBytewise = float64(byteNs) / float64(ns)
					if string(ans) != string(byteAns) {
						return fmt.Errorf("itpir_answer: word kernel differs from the byte-wise reference — determinism gate failed")
					}
				}
			} else {
				e.SpeedupVsWorkers1 = float64(baseNs) / float64(ns)
				e.IdenticalToWorkers1 = string(ans) == string(baseAns)
				if !e.IdenticalToWorkers1 {
					return fmt.Errorf("%s workers=%d: answer differs byte-wise from the workers=1 reference — determinism gate failed", k.name, w)
				}
			}
			report.Entries = append(report.Entries, e)
			log.Printf("%-22s workers=%-2d %12s  %8.0f MiB/s  speedup %.2fx",
				k.name, w, time.Duration(ns), e.ThroughputMiBs, e.SpeedupVsWorkers1)
		}
	}

	// Scaling gate: itpir_answer at the largest worker count vs. the
	// workers=1 reference. Enforced only on multi-core machines — on a
	// single CPU the speedup is ≈ 1.0 by construction, so the gate degrades
	// to the warning already in the report.
	maxW := ws[0]
	for _, w := range ws {
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 1 && minScaling > 0 {
		sg := &ScalingGate{
			Kernel: "itpir_answer", MaxWorkers: maxW,
			MinScaling: minScaling, Enforced: runtime.NumCPU() > 1,
		}
		for _, e := range report.Entries {
			if e.Kernel == "itpir_answer" && e.Workers == maxW {
				sg.Scaling = e.SpeedupVsWorkers1
			}
		}
		report.Scaling = sg
		if !sg.Enforced {
			log.Printf("scaling gate skipped (%s): itpir_answer workers=%d speedup %.2fx", report.Warning, maxW, sg.Scaling)
		} else if sg.Scaling < minScaling {
			return fmt.Errorf("SCALING GATE FAILED: itpir_answer workers=%d speedup %.2fx below required %.2fx", maxW, sg.Scaling, minScaling)
		} else {
			log.Printf("scaling OK: itpir_answer workers=%d speedup %.2fx (need ≥ %.1fx)", maxW, sg.Scaling, minScaling)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%d entries); all parallel answers byte-identical to sequential", out, len(report.Entries))
	if minWordSpeedup > 0 {
		got := float64(byteNs) / float64(wordBaseNs)
		if got < minWordSpeedup {
			return fmt.Errorf("word kernel speedup over byte-wise %.2fx below required %.2fx", got, minWordSpeedup)
		}
	}
	return nil
}

func mibs(dbBytes, ns int64) float64 {
	if dbBytes == 0 || ns == 0 {
		return 0
	}
	return float64(dbBytes) / (1 << 20) / (float64(ns) / 1e9)
}

// bytewiseAnswer is the seed's byte-at-a-time XOR kernel, the baseline the
// word-packed engine is measured against.
func bytewiseAnswer(blocks [][]byte, subset []byte) []byte {
	out := make([]byte, len(blocks[0]))
	for i, b := range blocks {
		if subset[i>>3]>>(i&7)&1 == 1 {
			for j := range out {
				out[j] ^= b[j]
			}
		}
	}
	return out
}

// buildCPIRWorkload constructs a CPIR server over cpirBits random bits plus
// a deterministic full-width column query modulo a fixed 512-bit modulus.
func buildCPIRWorkload(cpirBits int, rng *rand.Rand) (*pir.CPIRServer, []*big.Int, *big.Int, error) {
	bits := make([]bool, cpirBits)
	for i := range bits {
		bits[i] = rng.Uint64()&1 == 1
	}
	srv, err := pir.NewCPIRServer(bits)
	if err != nil {
		return nil, nil, nil, err
	}
	n := new(big.Int).Lsh(big.NewInt(1), 512)
	n.Sub(n, big.NewInt(569)) // fixed odd modulus; the kernel only multiplies mod n
	_, cols := srv.Shape()
	query := make([]*big.Int, cols)
	for c := range query {
		v := make([]byte, 64)
		for j := range v {
			v[j] = byte(rng.Uint64())
		}
		query[c] = new(big.Int).Mod(new(big.Int).SetBytes(v), n)
	}
	return srv, query, n, nil
}

// buildStatWorkload builds the Section 3 PIR-backed statistical database
// over a synthetic clinical-trial dataset and returns a closure running a
// fixed COUNT/SUM rectangle query, serialized for the identity gate.
func buildStatWorkload(rows int, seed uint64) (*pir.StatDB, func() ([]byte, error), error) {
	d, err := dataset.Synth("trial", rows, seed)
	if err != nil {
		return nil, nil, err
	}
	hj, wj := d.Index("height"), d.Index("weight")
	hEdges := gridEdges(d, hj, 24)
	wEdges := gridEdges(d, wj, 24)
	db, err := pir.BuildStatDB(d, "height", "weight", "blood_pressure", hEdges, wEdges, 2)
	if err != nil {
		return nil, nil, err
	}
	// The queried rectangle covers the central 12×12 cells — 144 private
	// retrievals per evaluation, the k×cells round-trip cost the batched
	// client exists to parallelise.
	xLo, xHi := hEdges[6], hEdges[18]
	yLo, yHi := wEdges[6], wEdges[18]
	q := func() ([]byte, error) {
		res, err := db.RangeStats(xLo, xHi, yLo, yHi, seed^0x57a7)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	}
	return db, q, nil
}

// gridEdges covers column j's value range with cells+1 equally spaced
// edges (the top edge nudged up so the maximum stays inside the grid).
func gridEdges(d *dataset.Dataset, j, cells int) []float64 {
	lo, hi := d.Float(0, j), d.Float(0, j)
	for i := 1; i < d.Rows(); i++ {
		v := d.Float(i, j)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	hi += (hi - lo) * 1e-6
	edges := make([]float64, cells+1)
	for e := range edges {
		edges[e] = lo + (hi-lo)*float64(e)/float64(cells)
	}
	return edges
}

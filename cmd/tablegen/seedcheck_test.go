package main

import (
	"testing"

	"privacy3d/internal/core"
)

// TestTable2StableAcrossSeeds guards the headline reproduction against seed
// luck: the measured grades must match the reference table (the paper's
// Table 2 plus the DP extension row) for several independent synthetic
// populations, not just the default one.
func TestTable2StableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed evaluation in short mode")
	}
	ref := core.ReferenceTable2()
	for _, seed := range []uint64{20070923, 1, 424242} {
		cfg := core.DefaultEvalConfig()
		cfg.Seed = seed
		ev, err := core.NewEvaluator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := ev.Table2()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if m.Grades != ref[m.Class] {
				t.Errorf("seed %d, %v: measured %+v, reference %+v (scores %+v)",
					seed, m.Class, m.Grades, ref[m.Class], m.Scores)
			}
		}
	}
}

// Command tablegen regenerates every table and worked example of the paper
// "A Three-Dimensional Conceptual Framework for Database Privacy"
// (Domingo-Ferrer, SDM 2007) from the implementations in this repository,
// printing paper-vs-measured for each artefact.
//
// Usage:
//
//	tablegen -exp all|T1|T2|S2|S3|S4|X1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/core"
	"privacy3d/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tablegen: ")
	exp := flag.String("exp", "all", "experiment to regenerate: all, T1, T2, S2, S3, S4, X1, P")
	flag.Parse()

	run := map[string]func() error{
		"T1": table1,
		"T2": table2,
		"S2": func() error { return section("Section 2 — respondent vs owner privacy", core.Section2Scenarios) },
		"S3": func() error { return section("Section 3 — respondent vs user privacy", core.Section3Scenarios) },
		"S4": func() error { return section("Section 4 — owner vs user privacy", core.Section4Scenarios) },
		"X1": utility,
		"P":  pipelines,
	}
	if *exp == "all" {
		for _, id := range []string{"T1", "S2", "S3", "S4", "T2", "X1", "P"} {
			if err := run[id](); err != nil {
				log.Fatalf("%s: %v", id, err)
			}
			fmt.Println()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q (want all, T1, T2, S2, S3, S4, X1, P)", *exp)
	}
	if err := f(); err != nil {
		log.Fatalf("%s: %v", *exp, err)
	}
}

func table1() error {
	fmt.Println("== Table 1 — the two toy patient datasets ==")
	for name, d := range map[string]*dataset.Dataset{
		"Dataset 1 (left)":  dataset.Dataset1(),
		"Dataset 2 (right)": dataset.Dataset2(),
	} {
		rep := anonymity.Analyze(d)
		fmt.Printf("\n%s:\n%s", name, d)
		fmt.Printf("anonymity: %s\n", rep)
	}
	d1 := dataset.Dataset1()
	fmt.Printf("\npaper: Dataset 1 spontaneously 3-anonymous → measured k = %d\n",
		anonymity.K(d1, d1.QuasiIdentifiers()))
	d2 := dataset.Dataset2()
	fmt.Printf("paper: Dataset 2 not 3-anonymous → measured k = %d\n",
		anonymity.K(d2, d2.QuasiIdentifiers()))
	return nil
}

func table2() error {
	fmt.Println("== Table 2 — technology classes scored on the three dimensions ==")
	ev, err := core.NewEvaluator(core.DefaultEvalConfig())
	if err != nil {
		return err
	}
	paper := core.PaperTable2()
	ref := core.ReferenceTable2()
	ms, err := ev.Table2()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Technology class\tRespondent\tOwner\tUser\treference (R/O/U)\tmatch")
	matched, published := 0, 0
	for _, m := range ms {
		r := ref[m.Class]
		ok := m.Grades == r
		if ok {
			matched++
		}
		mark := ""
		if _, inPaper := paper[m.Class]; !inPaper {
			mark = " (not in paper)"
		} else {
			published++
		}
		fmt.Fprintf(w, "%s\t%s (%.2f)\t%s (%.2f)\t%s (%.2f)\t%s/%s/%s%s\t%v\n",
			m.Class,
			m.Grades.Respondent, m.Scores.Respondent,
			m.Grades.Owner, m.Scores.Owner,
			m.Grades.User, m.Scores.User,
			r.Respondent, r.Owner, r.User, mark, ok)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("matched %d/%d rows (%d published in the paper's Table 2; the DP row is this repository's extension)\n",
		matched, len(ms), published)
	return nil
}

func section(title string, f func() ([]core.QuadrantResult, error)) error {
	fmt.Printf("== %s ==\n", title)
	rs, err := f()
	if err != nil {
		return err
	}
	for _, r := range rs {
		status := "HOLDS"
		if !r.Holds {
			status = "FAILS"
		}
		fmt.Printf("\n[%s] %s — %s\n", r.ID, status, r.Claim)
		for _, fct := range r.Facts {
			fmt.Printf("    %s\n", fct)
		}
	}
	return nil
}

func pipelines() error {
	fmt.Println("== E-P — holistic pipelines compared on the three dimensions (Section 6) ==")
	ev, err := core.NewEvaluator(core.DefaultEvalConfig())
	if err != nil {
		return err
	}
	candidates := []core.Pipeline{
		RecommendedNoPIR(),
		core.RecommendedPipeline(3),
		{
			Name:        "condense-all + PIR",
			Stages:      []core.Stage{{Method: "condense", Target: "numeric", K: 2}},
			ServeViaPIR: true,
		},
		{
			Name:        "rank-swap + PIR",
			Stages:      []core.Stage{{Method: "swap", Target: "numeric", Window: 5}},
			ServeViaPIR: true,
		},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "pipeline\trespondent\towner\tuser\tinfo loss\tall ≥ medium")
	for _, p := range candidates {
		rep, err := ev.EvaluatePipeline(p, core.Medium)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%s (%.2f)\t%s (%.2f)\t%s (%.2f)\t%.4f\t%v\n",
			rep.Name,
			rep.Grades.Respondent, rep.Scores.Respondent,
			rep.Grades.Owner, rep.Scores.Owner,
			rep.Grades.User, rep.Scores.User,
			rep.InfoLoss, rep.SatisfiesAll)
	}
	return w.Flush()
}

// RecommendedNoPIR is the paper's recipe without the PIR stage, showing the
// missing user dimension.
func RecommendedNoPIR() core.Pipeline {
	p := core.RecommendedPipeline(3)
	p.Name = "k-anonymize + noise, plaintext access"
	p.ServeViaPIR = false
	return p
}

func utility() error {
	fmt.Println("== E-X1 — utility impact of protecting more dimensions (Section 6) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tsetting\tdimensions\tinfo loss\tcomm bits/lookup")
	for _, k := range []int{2, 3, 5, 10} {
		rows, err := core.UtilityVsDimensions(k, 41)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%s\t%d\t%.4f\t%d\n", k, r.Setting, r.Dims, r.InfoLoss, r.CommBits)
		}
	}
	return w.Flush()
}

// Command privacy3d is the command-line front end of the library: it masks
// microdata files, analyses their anonymity, evaluates technology classes
// on the three privacy dimensions, serves an interactive statistical
// database, and demonstrates the tracker attack against it.
//
// Usage:
//
//	privacy3d analyze  -in data.csv -schema h:qi:num,...
//	privacy3d mask     -in data.csv -schema ... -method mdav -k 3 -out masked.csv
//	privacy3d evaluate [-class "SDC"]
//	privacy3d serve    -in data.csv -schema ... -protect auditing -addr :8733
//	privacy3d attack   -in data.csv -schema ... -protect size
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/core"
	"privacy3d/internal/dataset"
	"privacy3d/internal/generalize"
	"privacy3d/internal/microagg"
	"privacy3d/internal/noise"
	"privacy3d/internal/par"
	"privacy3d/internal/risk"
	"privacy3d/internal/swap"
)

// workersFlag registers the shared -workers flag: the size of the
// internal/par pool that the linkage attacks, MDAV and the Table 2
// evaluator fan out on. Results are identical for every setting; only the
// wall-clock changes.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "analytics worker-pool size (0 = all CPUs)")
}

// applyWorkers validates and installs the -workers value.
func applyWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("-workers must be ≥ 0, got %d", n)
	}
	par.SetWorkers(n)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("privacy3d: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "mask":
		err = cmdMask(os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "pipeline":
		err = cmdPipeline(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: privacy3d <command> [flags]

commands:
  analyze   report k-anonymity, p-sensitivity, l-diversity, t-closeness of a CSV
  mask      mask a CSV (methods: mdav, mondrian, noise, corrnoise, swap, condense)
  evaluate  score technology classes on the three privacy dimensions
  serve     run an interactive statistical database over HTTP
  attack    run the tracker attack against a protected server
  query     evaluate one statistical query against a CSV under a protection
  pipeline  evaluate a masking pipeline on the three privacy dimensions
  synth     generate a synthetic microdata CSV of a chosen size`)
}

func loadCSV(path, schema string) (*dataset.Dataset, error) {
	attrs, err := parseSchema(schema)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f, attrs)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file")
	schema := fs.String("schema", "", "schema as name:role:kind[,...]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := loadCSV(*in, *schema)
	if err != nil {
		return err
	}
	rep := anonymity.Analyze(d)
	fmt.Printf("records: %d, attributes: %d\n", d.Rows(), d.Cols())
	fmt.Println(rep)
	if uniq := anonymity.UniqueRows(d, d.QuasiIdentifiers()); len(uniq) > 0 {
		fmt.Printf("unique respondents (re-identification risk): rows %v\n", uniq)
	}
	return nil
}

func cmdMask(args []string) error {
	fs := flag.NewFlagSet("mask", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file")
	out := fs.String("out", "", "output CSV file (default stdout)")
	schema := fs.String("schema", "", "schema as name:role:kind[,...]")
	method := fs.String("method", "mdav", "mdav, mondrian, noise, corrnoise, swap or condense")
	k := fs.Int("k", 3, "group size for mdav/mondrian/condense")
	amplitude := fs.Float64("amplitude", 0.35, "relative noise amplitude for noise/corrnoise")
	window := fs.Float64("p", 5, "rank-swap window in percent")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	d, err := loadCSV(*in, *schema)
	if err != nil {
		return err
	}
	qi := d.QuasiIdentifiers()
	rng := dataset.NewRand(*seed)
	var masked *dataset.Dataset
	switch *method {
	case "mdav":
		var res microagg.Result
		masked, res, err = microagg.Mask(d, microagg.NewOptions(*k))
		if err == nil {
			fmt.Fprintf(os.Stderr, "information loss (SSE/SST): %.4f\n", res.IL())
		}
	case "mondrian":
		masked, _, err = generalize.MondrianMask(d, qi, *k)
	case "noise":
		masked, err = noise.AddUncorrelated(d, qi, *amplitude, rng)
	case "corrnoise":
		masked, err = noise.AddCorrelated(d, qi, *amplitude, rng)
	case "swap":
		masked, err = swap.RankSwap(d, qi, *window, rng)
	case "condense":
		masked, err = microagg.Condense(d, qi, *k, rng)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		return err
	}
	// Full risk/utility assessment on numeric quasi-identifiers (Mondrian
	// recodes to intervals, so skip there).
	if *method != "mondrian" {
		a, err := risk.Assess(d, masked, qi, risk.AssessConfig{SkipProbabilistic: d.Rows() > 2000})
		if err == nil {
			fmt.Fprintln(os.Stderr, a)
		}
	}
	fmt.Fprintf(os.Stderr, "anonymity after masking: %s\n", anonymity.Analyze(masked))
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return masked.WriteCSV(w)
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	class := fs.String("class", "", "evaluate a single class by name (default: all)")
	n := fs.Int("n", 0, "population size override")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	cfg := core.DefaultEvalConfig()
	if *n > 0 {
		cfg.N = *n
	}
	ev, err := core.NewEvaluator(cfg)
	if err != nil {
		return err
	}
	classes := core.Classes()
	if *class != "" {
		classes = nil
		for _, c := range core.Classes() {
			if c.String() == *class {
				classes = []core.Class{c}
			}
		}
		if classes == nil {
			return fmt.Errorf("unknown class %q", *class)
		}
	}
	paper := core.PaperTable2()
	for _, c := range classes {
		m, err := ev.Evaluate(c)
		if err != nil {
			return err
		}
		p := paper[c]
		fmt.Printf("%-38s respondent=%s(%.2f) owner=%s(%.2f) user=%s(%.2f)  [paper: %s/%s/%s]\n",
			c, m.Grades.Respondent, m.Scores.Respondent,
			m.Grades.Owner, m.Scores.Owner,
			m.Grades.User, m.Scores.User,
			p.Respondent, p.Owner, p.User)
	}
	return nil
}

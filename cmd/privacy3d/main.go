// Command privacy3d is the command-line front end of the library: it masks
// microdata files, analyses their anonymity, evaluates technology classes
// on the three privacy dimensions, serves an interactive statistical
// database, and demonstrates the tracker attack against it.
//
// Usage:
//
//	privacy3d analyze  -in data.csv -schema h:qi:num,...
//	privacy3d mask     -in data.csv -schema ... -method mdav -k 3 -out masked.csv
//	privacy3d evaluate [-class "SDC"]
//	privacy3d serve    -in data.csv -schema ... -protect auditing -addr :8733
//	privacy3d attack   -in data.csv -schema ... -protect size
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/core"
	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
	"privacy3d/internal/risk"
	"privacy3d/internal/sdc"
)

// workersFlag registers the shared -workers flag: the size of the
// internal/par pool that the linkage attacks, MDAV and the Table 2
// evaluator fan out on. Results are identical for every setting; only the
// wall-clock changes.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "analytics worker-pool size (0 = all CPUs)")
}

// applyWorkers validates and installs the -workers value.
func applyWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("-workers must be ≥ 0, got %d", n)
	}
	par.SetWorkers(n)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("privacy3d: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// One signal-bound context for the batch subcommands: ^C cancels an
	// in-flight masking or evaluation at its next chunk boundary instead of
	// killing the process mid-write. The serving subcommands install their
	// own graceful-drain signal handling via obs.Run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "mask":
		err = cmdMask(ctx, os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(ctx, os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "pipeline":
		err = cmdPipeline(ctx, os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "schema":
		err = cmdSchema(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: privacy3d <command> [flags]

commands:
  analyze   report k-anonymity, p-sensitivity, l-diversity, t-closeness of a CSV
  mask      mask a CSV with a registered protection method
  evaluate  score technology classes on the three privacy dimensions
  serve     run an interactive statistical database over HTTP
  attack    run the tracker attack against a protected server
  query     evaluate one statistical query against a CSV under a protection
  pipeline  evaluate a masking pipeline on the three privacy dimensions
  synth     generate a synthetic microdata CSV of a chosen size
  schema    print the protection-method registry (schema -methods)

mask methods: %s
`, strings.Join(sdc.Names(), ", "))
}

func loadCSV(path, schema string) (*dataset.Dataset, error) {
	attrs, err := parseSchema(schema)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f, attrs)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file")
	schema := fs.String("schema", "", "schema as name:role:kind[,...]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := loadCSV(*in, *schema)
	if err != nil {
		return err
	}
	rep := anonymity.Analyze(d)
	fmt.Printf("records: %d, attributes: %d\n", d.Rows(), d.Cols())
	fmt.Println(rep)
	if uniq := anonymity.UniqueRows(d, d.QuasiIdentifiers()); len(uniq) > 0 {
		fmt.Printf("unique respondents (re-identification risk): rows %v\n", uniq)
	}
	return nil
}

// parseSetFlag parses a -set value of the form "name=value[,name=value...]"
// into sdc parameter values. Name validation is left to the registry, which
// knows each method's schema and lists the accepted names in its error.
func parseSetFlag(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	vals := map[string]float64{}
	for _, kv := range strings.Split(s, ",") {
		name, raw, ok := strings.Cut(kv, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-set: want name=value, got %q", kv)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("-set %s: %v", name, err)
		}
		vals[name] = v
	}
	return vals, nil
}

func cmdMask(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("mask", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file")
	out := fs.String("out", "", "output CSV file (default stdout)")
	schema := fs.String("schema", "", "schema as name:role:kind[,...]")
	method := fs.String("method", "mdav", "protection method: "+strings.Join(sdc.Names(), ", "))
	protect := fs.String("protect", "", "alias for -method")
	k := fs.Int("k", 3, "group size for grouping methods")
	amplitude := fs.Float64("amplitude", 0.35, "relative noise amplitude for noise/corrnoise")
	window := fs.Float64("p", 5, "rank-swap window in percent")
	set := fs.String("set", "", "extra method parameters as name=value[,name=value...]")
	target := fs.String("target", "", "columns to mask: qi, confidential, numeric or categorical (default: the method's)")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	name := *method
	if explicit["protect"] {
		if explicit["method"] && *method != *protect {
			return fmt.Errorf("-method %q and -protect %q disagree; set one", *method, *protect)
		}
		name = *protect
	}
	m, err := sdc.Lookup(name)
	if err != nil {
		return err
	}
	ms := m.Params()
	vals, err := parseSetFlag(*set)
	if err != nil {
		return err
	}
	// The typed legacy flags feed the parameters they historically set, but
	// only when given explicitly and declared by the method — so `-k 5` still
	// tunes mdav, while an irrelevant leftover `-amplitude` is ignored just
	// as the pre-registry switch ignored it.
	legacy := map[string]float64{"k": float64(*k), "amplitude": *amplitude, "p": *window}
	for flagName, paramName := range map[string]string{"k": "k", "amplitude": "amp", "p": "p"} {
		if !explicit[flagName] {
			continue
		}
		for _, spec := range ms.Params {
			if spec.Name == paramName {
				if vals == nil {
					vals = map[string]float64{}
				}
				if _, dup := vals[paramName]; !dup {
					vals[paramName] = legacy[flagName]
				}
			}
		}
	}
	d, err := loadCSV(*in, *schema)
	if err != nil {
		return err
	}
	masked, rep, err := sdc.ApplySeed(ctx, name, d, sdc.Params{Target: *target, Values: vals}, *seed)
	if err != nil {
		return err
	}
	if rep.InfoLossValid {
		fmt.Fprintf(os.Stderr, "information loss (SSE/SST): %.4f\n", rep.InfoLoss)
	}
	// Full risk/utility assessment on the numeric quasi-identifiers.
	// Recoding methods replace values with intervals, so skip there.
	if !ms.Recodes {
		a, err := risk.Assess(d, masked, d.QuasiIdentifiers(), risk.AssessConfig{SkipProbabilistic: d.Rows() > 2000})
		if err == nil {
			fmt.Fprintln(os.Stderr, a)
		}
	}
	fmt.Fprintf(os.Stderr, "anonymity after masking: %s\n", anonymity.Analyze(masked))
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return masked.WriteCSV(w)
}

func cmdEvaluate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	class := fs.String("class", "", "evaluate a single class by name (default: all)")
	n := fs.Int("n", 0, "population size override")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	cfg := core.DefaultEvalConfig()
	if *n > 0 {
		cfg.N = *n
	}
	ev, err := core.NewEvaluator(cfg)
	if err != nil {
		return err
	}
	classes := core.AllClasses()
	if *class != "" {
		classes = nil
		for _, c := range core.AllClasses() {
			if c.String() == *class {
				classes = []core.Class{c}
			}
		}
		if classes == nil {
			return fmt.Errorf("unknown class %q", *class)
		}
	}
	paper := core.ReferenceTable2()
	for _, c := range classes {
		m, err := ev.EvaluateCtx(ctx, c)
		if err != nil {
			return err
		}
		p := paper[c]
		fmt.Printf("%-38s respondent=%s(%.2f) owner=%s(%.2f) user=%s(%.2f)  [reference: %s/%s/%s]\n",
			c, m.Grades.Respondent, m.Scores.Respondent,
			m.Grades.Owner, m.Scores.Owner,
			m.Grades.User, m.Scores.User,
			p.Respondent, p.Owner, p.User)
	}
	return nil
}

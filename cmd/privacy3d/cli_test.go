package main

import (
	"strings"
	"testing"

	"privacy3d/internal/core"
	"privacy3d/internal/dataset"
	"privacy3d/internal/sdcquery"
)

func TestParseSchema(t *testing.T) {
	attrs, err := parseSchema("height:qi:num,weight:qi:num,bp:conf:num,aids:conf:cat,edu:other:ord,name:id:cat")
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 6 {
		t.Fatalf("parsed %d attributes", len(attrs))
	}
	if attrs[0].Role != dataset.QuasiIdentifier || attrs[0].Kind != dataset.Numeric {
		t.Errorf("attr 0 = %+v", attrs[0])
	}
	if attrs[3].Role != dataset.Confidential || attrs[3].Kind != dataset.Nominal {
		t.Errorf("attr 3 = %+v", attrs[3])
	}
	if attrs[4].Kind != dataset.Ordinal || attrs[5].Role != dataset.Identifier {
		t.Errorf("attrs 4/5 = %+v %+v", attrs[4], attrs[5])
	}
	for _, bad := range []string{"", "x", "x:qi", "x:king:num", "x:qi:blob"} {
		if _, err := parseSchema(bad); err == nil {
			t.Errorf("parseSchema(%q) accepted", bad)
		}
	}
}

func TestParseProtection(t *testing.T) {
	want := map[string]sdcquery.Protection{
		"none": sdcquery.NoProtection, "size": sdcquery.SizeRestriction,
		"auditing": sdcquery.Auditing, "perturbation": sdcquery.Perturbation,
		"camouflage": sdcquery.Camouflage, "overlap": sdcquery.OverlapRestriction,
		"sample": sdcquery.RandomSample, "dp": sdcquery.DifferentialPrivacy,
	}
	for name, p := range want {
		got, err := parseProtection(name)
		if err != nil || got != p {
			t.Errorf("parseProtection(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseProtection("magic"); err == nil {
		t.Error("accepted unknown protection")
	}
}

// TestProtectionHelpMatchesParser pins the fix for the drifting -protect
// help text: the help string, the parser and the error message all derive
// from one shared list, and that list covers every Protection the parser
// accepts (including overlap and sample, which the old help omitted).
func TestProtectionHelpMatchesParser(t *testing.T) {
	names := protectionNames()
	for _, want := range []string{"none", "size", "auditing", "perturbation", "camouflage", "overlap", "sample", "dp"} {
		if !strings.Contains(names, want) {
			t.Errorf("protection list %q missing %q", names, want)
		}
	}
	help := protectHelp("protection to serve under")
	for _, name := range sdcquery.ProtectionNames() {
		if !strings.Contains(help, name) {
			t.Errorf("help %q missing accepted value %q", help, name)
		}
		if _, err := parseProtection(name); err != nil {
			t.Errorf("parseProtection(%q): %v", name, err)
		}
	}
	// The error message names every accepted value too.
	_, err := parseProtection("magic")
	if err == nil {
		t.Fatal("accepted unknown protection")
	}
	for _, name := range sdcquery.ProtectionNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q missing accepted value %q", err, name)
		}
	}
}

func TestParseStages(t *testing.T) {
	stages, err := parseStages("mdav:qi:k=3,noise:confidential:amp=0.35,swap:numeric:window=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("parsed %d stages", len(stages))
	}
	if stages[0].Method != "mdav" || stages[0].Target != "qi" || stages[0].K != 3 {
		t.Errorf("stage 0 = %+v", stages[0])
	}
	if stages[1].Amplitude != 0.35 || stages[2].Window != 5 {
		t.Errorf("stages 1/2 = %+v %+v", stages[1], stages[2])
	}
	// Unknown names parse into Extra so any registry parameter is reachable;
	// the sdc layer rejects names the method's schema does not declare.
	stages, err = parseStages("vmdav:qi:k=3:gamma=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if stages[0].Extra["gamma"] != 0.3 {
		t.Errorf("extra params = %+v", stages[0].Extra)
	}
	for _, bad := range []string{"", "mdav", "mdav:qi:k", "mdav:qi:k=x", "mdav:qi:zap=z", "noise:qi:amp=x", "swap:qi:window=x"} {
		if _, err := parseStages(bad); err == nil {
			t.Errorf("parseStages(%q) accepted", bad)
		}
	}
}

func TestParseGrade(t *testing.T) {
	cases := map[string]core.Grade{
		"none": core.None, "low": core.Low, "medium": core.Medium,
		"medium-high": core.MediumHigh, "high": core.High,
	}
	for name, g := range cases {
		got, err := parseGrade(name)
		if err != nil || got != g {
			t.Errorf("parseGrade(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseGrade("ultra"); err == nil {
		t.Error("accepted unknown grade")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCmdSynthRowsValidation exercises the -rows knob end to end: the
// subcommand must reject non-positive sizes and unknown generators, and
// must write exactly the requested number of records on success.
func TestCmdSynthRowsValidation(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string // substring of the error, "" = success
		rows    int    // expected data rows on success
	}{
		{"default trial", []string{"-rows", "25"}, "", 25},
		{"census", []string{"-kind", "census", "-rows", "12"}, "", 12},
		{"zero rows", []string{"-rows", "0"}, "must be > 0", 0},
		{"negative rows", []string{"-rows", "-3"}, "must be > 0", 0},
		{"unknown kind", []string{"-kind", "warp", "-rows", "5"}, "unknown synthetic kind", 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "synth.csv")
			err := cmdSynth(append(tt.args, "-out", out))
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("cmdSynth(%v) err = %v, want %q", tt.args, err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Count(strings.TrimSpace(string(data)), "\n")
			if lines != tt.rows { // header + rows → rows newlines after trim
				t.Errorf("wrote %d data rows, want %d", lines, tt.rows)
			}
		})
	}
}

func TestApplyWorkersValidation(t *testing.T) {
	if err := applyWorkers(-1); err == nil {
		t.Error("applyWorkers accepted a negative pool size")
	}
	for _, n := range []int{0, 1, 8} {
		if err := applyWorkers(n); err != nil {
			t.Errorf("applyWorkers(%d) = %v", n, err)
		}
	}
	applyWorkers(0) // restore the GOMAXPROCS default for other tests
}

package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"

	"privacy3d/internal/core"
)

// cmdPipeline evaluates a masking pipeline on the three privacy dimensions:
//
//	privacy3d pipeline -stages "mdav:qi:k=3,noise:confidential:amp=0.35" -pir
//
// Stage syntax: method:target[:param=value]... where method is any name of
// the sdc registry (see `privacy3d schema -methods`); target is qi,
// confidential, numeric or categorical. k=<int>, amp=<float> and
// window=<float> (rank-swap window, swap only) fill the classic typed stage
// fields — unset parameters use the registry defaults; every other
// param=value pair is handed to the method by name (e.g. gamma=0.3 for
// vmdav), so new registry methods need no parser changes.
func cmdPipeline(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	stages := fs.String("stages", "mdav:qi:k=3,noise:confidential:amp=0.35", "stage list")
	pir := fs.Bool("pir", true, "serve the release through PIR (user privacy)")
	target := fs.String("target", "medium", "grade every dimension must reach: none, low, medium, medium-high, high")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	parsed, err := parseStages(*stages)
	if err != nil {
		return err
	}
	grade, err := parseGrade(*target)
	if err != nil {
		return err
	}
	ev, err := core.NewEvaluator(core.DefaultEvalConfig())
	if err != nil {
		return err
	}
	p := core.Pipeline{Name: *stages, Stages: parsed, ServeViaPIR: *pir}
	rep, err := ev.EvaluatePipelineCtx(ctx, p, grade)
	if err != nil {
		return err
	}
	fmt.Printf("pipeline:   %s (PIR: %v)\n", rep.Name, *pir)
	fmt.Printf("respondent: %s (%.3f)\n", rep.Grades.Respondent, rep.Scores.Respondent)
	fmt.Printf("owner:      %s (%.3f)\n", rep.Grades.Owner, rep.Scores.Owner)
	fmt.Printf("user:       %s (%.3f)\n", rep.Grades.User, rep.Scores.User)
	fmt.Printf("info loss:  %.4f\n", rep.InfoLoss)
	fmt.Printf("all dimensions ≥ %s: %v\n", grade, rep.SatisfiesAll)
	return nil
}

func parseStages(spec string) ([]core.Stage, error) {
	var out []core.Stage
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("stage %q: want method:target[:param=value...]", field)
		}
		st := core.Stage{Method: parts[0], Target: parts[1]}
		for _, kv := range parts[2:] {
			name, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("stage %q: malformed parameter %q", field, kv)
			}
			switch name {
			case "k":
				k, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("stage %q: k: %w", field, err)
				}
				st.K = k
			case "amp":
				a, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("stage %q: amp: %w", field, err)
				}
				st.Amplitude = a
			case "window":
				w, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("stage %q: window: %w", field, err)
				}
				st.Window = w
			default:
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("stage %q: %s: %w", field, name, err)
				}
				if st.Extra == nil {
					st.Extra = map[string]float64{}
				}
				st.Extra[name] = v
			}
		}
		out = append(out, st)
	}
	return out, nil
}

func parseGrade(name string) (core.Grade, error) {
	switch name {
	case "none":
		return core.None, nil
	case "low":
		return core.Low, nil
	case "medium":
		return core.Medium, nil
	case "medium-high":
		return core.MediumHigh, nil
	case "high":
		return core.High, nil
	default:
		return 0, fmt.Errorf("unknown grade %q", name)
	}
}

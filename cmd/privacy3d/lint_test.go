package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacy3d/internal/sdc"
	"privacy3d/internal/sdcquery"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestMethodTableGolden pins the generated registry table: `privacy3d schema
// -methods`, the README/EXPERIMENTS "Protection methods" sections and this
// golden file are all the same sdc.MarkdownTable() output. Registering,
// renaming or re-documenting a method fails this test until the golden (and
// therefore the docs) are regenerated with -update.
func TestMethodTableGolden(t *testing.T) {
	got := sdc.MarkdownTable()
	path := filepath.Join("testdata", "methods.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("registry table drifted from %s; run `go test ./cmd/privacy3d -run TestMethodTableGolden -update` and refresh the README/EXPERIMENTS sections\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestHelpListsEveryMethod asserts the CLI help is generated from the
// registries: the mask -method help and the top-level usage name every sdc
// method, and the -protect help names every query protection.
func TestHelpListsEveryMethod(t *testing.T) {
	maskHelp := "protection method: " + strings.Join(sdc.Names(), ", ")
	for _, name := range sdc.Names() {
		if !strings.Contains(maskHelp, name) {
			t.Errorf("mask -method help missing %q", name)
		}
	}
	help := protectHelp("protection to serve under")
	for _, name := range sdcquery.ProtectionNames() {
		if !strings.Contains(help, name) {
			t.Errorf("-protect help missing %q", name)
		}
	}
	// Every documented method must actually resolve, and vice versa every
	// registered method must carry a non-empty schema for the table.
	for _, m := range sdc.List() {
		s := m.Params()
		if s.Doc == "" || s.Class == "" || s.DefaultTarget == "" {
			t.Errorf("method %s: incomplete schema %+v", s.Name, s)
		}
		if _, err := sdc.Lookup(s.Name); err != nil {
			t.Errorf("listed method %s does not resolve: %v", s.Name, err)
		}
	}
}

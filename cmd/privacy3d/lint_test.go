package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacy3d/internal/sdc"
	"privacy3d/internal/sdcquery"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestMethodTableGolden pins the generated registry table: `privacy3d schema
// -methods`, the README/EXPERIMENTS "Protection methods" sections and this
// golden file are all the same sdc.MarkdownTable() output. Registering,
// renaming or re-documenting a method fails this test until the golden (and
// therefore the docs) are regenerated with -update.
func TestMethodTableGolden(t *testing.T) {
	got := sdc.MarkdownTable()
	path := filepath.Join("testdata", "methods.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("registry table drifted from %s; run `go test ./cmd/privacy3d -run TestMethodTableGolden -update` and refresh the README/EXPERIMENTS sections\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestProtectionTableGolden pins the generated -protect table: the README
// "Query protections" section and this golden file are the same
// sdcquery.ProtectionTable() output. Adding, renaming or re-documenting a
// protection fails this test until the golden (and the README section) are
// regenerated with -update.
func TestProtectionTableGolden(t *testing.T) {
	got := sdcquery.ProtectionTable()
	path := filepath.Join("testdata", "protections.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("protection table drifted from %s; run `go test ./cmd/privacy3d -run TestProtectionTableGolden -update` and refresh the README section\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestProtectionTableFlagsExist asserts the "Extra flags" column of the
// generated -protect table only names flags the serve/query commands
// actually register — the help-text consistency gate for the dp flags
// (-epsilon, -delta, -budget, -principal).
func TestProtectionTableFlagsExist(t *testing.T) {
	fs := flag.NewFlagSet("probe", flag.ContinueOnError)
	fs.Int("minsize", 3, "")
	fs.String("principal", "", "")
	dpFlags(fs)
	for _, line := range strings.Split(sdcquery.ProtectionTable(), "\n") {
		cells := strings.Split(line, "|")
		if len(cells) < 5 || !strings.HasPrefix(strings.TrimSpace(cells[1]), "`") ||
			strings.TrimSpace(cells[1]) == "`-protect`" { // header row
			continue
		}
		for _, f := range strings.Split(cells[3], ",") {
			f = strings.TrimSpace(f)
			if f == "" || f == "—" {
				continue
			}
			name := strings.TrimPrefix(f, "-")
			if fs.Lookup(name) == nil {
				t.Errorf("protection table documents flag %q which no CLI command registers", f)
			}
		}
	}
	// And the dp row must document every dp flag the CLI registers.
	table := sdcquery.ProtectionTable()
	for _, name := range []string{"-epsilon", "-delta", "-budget", "-principal"} {
		if !strings.Contains(table, name) {
			t.Errorf("protection table missing dp flag %s", name)
		}
	}
}

// TestServeFlagsGolden pins the serve command's full flag surface — name,
// default and usage for every flag, including the sustained-load serving
// knobs (-querylogcap, -cachecap, -ratelimit, -burst) — so the serving
// configuration cannot change silently. Regenerate with -update.
func TestServeFlagsGolden(t *testing.T) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	serveFlags(fs)
	var b strings.Builder
	fs.VisitAll(func(f *flag.Flag) {
		def := f.DefValue
		if f.Name == "ownertoken" {
			def = "" // inherits $PRIVACY3D_OWNER_TOKEN: environment-dependent
		}
		fmt.Fprintf(&b, "-%s (default %q): %s\n", f.Name, def, f.Usage)
	})
	got := b.String()
	path := filepath.Join("testdata", "serveflags.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("serve flag surface drifted from %s; run `go test ./cmd/privacy3d -run TestServeFlagsGolden -update` and refresh the README serving section\n got:\n%s\nwant:\n%s", path, got, want)
	}
	// The sustained-load knobs must stay registered under their documented
	// names — the README and DESIGN serving chapters reference them.
	for _, name := range []string{"querylogcap", "cachecap", "ratelimit", "burst", "shards", "batchmax"} {
		if fs.Lookup(name) == nil {
			t.Errorf("serve is missing the documented -%s flag", name)
		}
	}
}

// TestHelpListsEveryMethod asserts the CLI help is generated from the
// registries: the mask -method help and the top-level usage name every sdc
// method, and the -protect help names every query protection.
func TestHelpListsEveryMethod(t *testing.T) {
	maskHelp := "protection method: " + strings.Join(sdc.Names(), ", ")
	for _, name := range sdc.Names() {
		if !strings.Contains(maskHelp, name) {
			t.Errorf("mask -method help missing %q", name)
		}
	}
	help := protectHelp("protection to serve under")
	for _, name := range sdcquery.ProtectionNames() {
		if !strings.Contains(help, name) {
			t.Errorf("-protect help missing %q", name)
		}
	}
	// Every documented method must actually resolve, and vice versa every
	// registered method must carry a non-empty schema for the table.
	for _, m := range sdc.List() {
		s := m.Params()
		if s.Doc == "" || s.Class == "" || s.DefaultTarget == "" {
			t.Errorf("method %s: incomplete schema %+v", s.Name, s)
		}
		if _, err := sdc.Lookup(s.Name); err != nil {
			t.Errorf("listed method %s does not resolve: %v", s.Name, err)
		}
	}
}

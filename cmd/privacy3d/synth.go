package main

import (
	"flag"
	"fmt"
	"os"

	"privacy3d/internal/dataset"
)

// cmdSynth generates a synthetic microdata file — the size-controllable
// workload behind the benchmark gate and the large-scale attack runs:
//
//	privacy3d synth -kind trial -rows 50000 -seed 7 -out big.csv
func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	kind := fs.String("kind", "trial", "generator: trial (clinical schema) or census (all-numeric)")
	rows := fs.Int("rows", 1000, "number of records to generate (must be > 0)")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	out := fs.String("out", "", "output CSV file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := dataset.Synth(*kind, *rows, *seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(os.Stderr, "generated %d %s records (%d attributes)\n", d.Rows(), *kind, d.Cols())
	return d.WriteCSV(w)
}

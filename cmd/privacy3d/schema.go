package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"privacy3d/internal/dataset"
	"privacy3d/internal/sdc"
)

// cmdSchema prints the protection-method registry. The -methods table is the
// canonical, generated view of every registered sdc method — README's
// "Protection methods" section and EXPERIMENTS.md reproduce its output, and
// the lint golden test pins it, so documentation cannot drift from code.
func cmdSchema(args []string) error {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	methods := fs.Bool("methods", false, "print the protection-method registry as a Markdown table")
	asJSON := fs.Bool("json", false, "print the registry as JSON instead of Markdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *asJSON:
		methods := sdc.List()
		schemas := make([]sdc.Schema, len(methods))
		for i, m := range methods {
			schemas[i] = m.Params()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(schemas)
	case *methods:
		fmt.Print(sdc.MarkdownTable())
		return nil
	default:
		fmt.Printf(`CSV schema syntax (the -schema flag of analyze/mask/serve/attack/query):

  name:role:kind[,name:role:kind...]

  roles: id (identifier), qi (quasi-identifier), conf (confidential), other
  kinds: num (numeric), cat (nominal), ord (ordinal)

Protection methods: %s
Run "privacy3d schema -methods" for the full registry table.
`, strings.Join(sdc.Names(), ", "))
		return nil
	}
}

// parseSchema parses the CLI schema syntax: a comma-separated list of
// name:role:kind triples, e.g.
//
//	height:qi:num,weight:qi:num,blood_pressure:conf:num,aids:conf:cat
//
// Roles: id, qi, conf, other. Kinds: num, cat, ord.
func parseSchema(spec string) ([]dataset.Attribute, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty -schema; expected name:role:kind[,...]")
	}
	var attrs []dataset.Attribute
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("schema field %q: want name:role:kind", field)
		}
		a := dataset.Attribute{Name: parts[0]}
		switch parts[1] {
		case "id":
			a.Role = dataset.Identifier
		case "qi":
			a.Role = dataset.QuasiIdentifier
		case "conf":
			a.Role = dataset.Confidential
		case "other":
			a.Role = dataset.NonConfidential
		default:
			return nil, fmt.Errorf("schema field %q: unknown role %q (want id, qi, conf, other)", field, parts[1])
		}
		switch parts[2] {
		case "num":
			a.Kind = dataset.Numeric
		case "cat":
			a.Kind = dataset.Nominal
		case "ord":
			a.Kind = dataset.Ordinal
		default:
			return nil, fmt.Errorf("schema field %q: unknown kind %q (want num, cat, ord)", field, parts[2])
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

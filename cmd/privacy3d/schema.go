package main

import (
	"fmt"
	"strings"

	"privacy3d/internal/dataset"
)

// parseSchema parses the CLI schema syntax: a comma-separated list of
// name:role:kind triples, e.g.
//
//	height:qi:num,weight:qi:num,blood_pressure:conf:num,aids:conf:cat
//
// Roles: id, qi, conf, other. Kinds: num, cat, ord.
func parseSchema(spec string) ([]dataset.Attribute, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty -schema; expected name:role:kind[,...]")
	}
	var attrs []dataset.Attribute
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("schema field %q: want name:role:kind", field)
		}
		a := dataset.Attribute{Name: parts[0]}
		switch parts[1] {
		case "id":
			a.Role = dataset.Identifier
		case "qi":
			a.Role = dataset.QuasiIdentifier
		case "conf":
			a.Role = dataset.Confidential
		case "other":
			a.Role = dataset.NonConfidential
		default:
			return nil, fmt.Errorf("schema field %q: unknown role %q (want id, qi, conf, other)", field, parts[1])
		}
		switch parts[2] {
		case "num":
			a.Kind = dataset.Numeric
		case "cat":
			a.Kind = dataset.Nominal
		case "ord":
			a.Kind = dataset.Ordinal
		default:
			return nil, fmt.Errorf("schema field %q: unknown kind %q (want num, cat, ord)", field, parts[2])
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"privacy3d/internal/dataset"
	"privacy3d/internal/sdcquery"
)

func parseProtection(name string) (sdcquery.Protection, error) {
	switch name {
	case "none":
		return sdcquery.NoProtection, nil
	case "size":
		return sdcquery.SizeRestriction, nil
	case "auditing":
		return sdcquery.Auditing, nil
	case "perturbation":
		return sdcquery.Perturbation, nil
	case "camouflage":
		return sdcquery.Camouflage, nil
	case "overlap":
		return sdcquery.OverlapRestriction, nil
	case "sample":
		return sdcquery.RandomSample, nil
	default:
		return 0, fmt.Errorf("unknown protection %q (want none, size, auditing, perturbation, camouflage, overlap, sample)", name)
	}
}

// cmdServe exposes a protected statistical database over HTTP: POST /query
// (structured JSON), POST /sql (raw query text); GET /log shows the owner's
// view of all submitted queries (making the absence of user privacy
// tangible).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file (default: the paper's Dataset 2)")
	schema := fs.String("schema", "", "schema as name:role:kind[,...]")
	protect := fs.String("protect", "auditing", "none, size, auditing, perturbation or camouflage")
	addr := fs.String("addr", ":8733", "listen address")
	minSize := fs.Int("minsize", 3, "query-set-size threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var d *dataset.Dataset
	var err error
	if *in == "" {
		d = dataset.Dataset2()
	} else {
		d, err = loadCSV(*in, *schema)
		if err != nil {
			return err
		}
	}
	prot, err := parseProtection(*protect)
	if err != nil {
		return err
	}
	srv, err := sdcquery.NewServer(d, sdcquery.Config{Protection: prot, MinSetSize: *minSize})
	if err != nil {
		return err
	}
	log.Printf("serving %d records with %s protection on %s", d.Rows(), prot, *addr)
	log.Printf("the owner sees every query at GET /log — the no-user-privacy side of Section 3")
	return http.ListenAndServe(*addr, sdcquery.NewHTTPHandler(srv))
}

// cmdAttack demonstrates the Schlörer tracker against a protected server.
func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file (default: the paper's Dataset 2)")
	schema := fs.String("schema", "", "schema as name:role:kind[,...]")
	protect := fs.String("protect", "size", "protection to attack")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var d *dataset.Dataset
	var err error
	if *in == "" {
		d = dataset.Dataset2()
	} else {
		d, err = loadCSV(*in, *schema)
		if err != nil {
			return err
		}
	}
	prot, err := parseProtection(*protect)
	if err != nil {
		return err
	}
	srv, err := sdcquery.NewServer(d, sdcquery.Config{Protection: prot})
	if err != nil {
		return err
	}
	// The canonical target: the paper's small-and-heavy respondent of
	// Dataset 2, pinned by height < 176 ∧ weight > 105.
	tr := sdcquery.NewTracker(srv,
		sdcquery.Predicate{{Col: "height", Op: sdcquery.Lt, V: 176}},
		sdcquery.Cond{Col: "weight", Op: sdcquery.Gt, V: 105})
	res, err := tr.Infer("blood_pressure")
	if err != nil {
		fmt.Printf("tracker attack BLOCKED by %s protection: %v\n", prot, err)
		return nil
	}
	fmt.Printf("tracker attack SUCCEEDED against %s protection using %d queries\n", prot, res.Queries)
	fmt.Printf("inferred: the target predicate matches %.0f respondent(s) with blood pressure sum %.1f\n",
		res.Count, res.Sum)
	if res.Count == 1 {
		fmt.Printf("→ the unique respondent's confidential blood pressure is %.1f mmHg\n", res.Sum)
	}
	return nil
}

// cmdQuery evaluates one SQL-ish statistical query against a CSV (or the
// built-in Dataset 2) under a chosen protection.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file (default: the paper's Dataset 2)")
	schema := fs.String("schema", "", "schema as name:role:kind[,...]")
	protect := fs.String("protect", "none", "protection to apply")
	q := fs.String("q", "", "query, e.g. \"SELECT AVG(blood_pressure) WHERE height < 165\"")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var d *dataset.Dataset
	var err error
	if *in == "" {
		d = dataset.Dataset2()
	} else {
		d, err = loadCSV(*in, *schema)
		if err != nil {
			return err
		}
	}
	prot, err := parseProtection(*protect)
	if err != nil {
		return err
	}
	srv, err := sdcquery.NewServer(d, sdcquery.Config{Protection: prot})
	if err != nil {
		return err
	}
	query, err := sdcquery.ParseQuery(*q)
	if err != nil {
		return err
	}
	a, err := srv.Ask(query)
	if err != nil {
		return err
	}
	switch {
	case a.Denied:
		fmt.Printf("DENIED: %s\n", a.Reason)
	case a.Interval:
		fmt.Printf("[%g, %g]\n", a.Lo, a.Hi)
	default:
		fmt.Printf("%g\n", a.Value)
	}
	return nil
}

package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"privacy3d/internal/dataset"
	"privacy3d/internal/obs"
	"privacy3d/internal/sdc"
	"privacy3d/internal/sdcquery"
	"privacy3d/internal/store"
)

// The -protect flag of serve/attack/query names a query-protection strategy
// of the sdcquery layer; parser, help text and error messages all derive
// from sdcquery.ProtectionNames, so they cannot drift apart.

// protectionNames lists every accepted -protect value, comma-separated.
func protectionNames() string {
	return strings.Join(sdcquery.ProtectionNames(), ", ")
}

// protectHelp is the shared -protect usage string.
func protectHelp(doing string) string {
	return fmt.Sprintf("%s: %s", doing, protectionNames())
}

func parseProtection(name string) (sdcquery.Protection, error) {
	return sdcquery.ParseProtection(name)
}

// dpFlags registers the differential-privacy flags shared by serve and
// query — the extra flags the `dp` row of sdcquery.ProtectionTable
// documents. They are ignored under every other -protect mode.
func dpFlags(fs *flag.FlagSet) (epsilon, delta, budget *float64) {
	epsilon = fs.Float64("epsilon", 0.5, "dp: per-query privacy cost ε (> 0)")
	delta = fs.Float64("delta", 0, "dp: 0 uses the Laplace mechanism; 0<δ<1 the Gaussian one")
	budget = fs.Float64("budget", 10, "dp: total ε each principal may spend before queries are refused")
	return epsilon, delta, budget
}

// serveOpts holds the parsed serve flags. The registration lives in
// serveFlags (not inline in cmdServe) so the lint suite can pin the full
// serve flag surface in testdata/serveflags.golden.
type serveOpts struct {
	in, schema, protect, ownerToken, addr *string
	minSize                               *int
	epsilon, delta, budget                *float64
	seed                                  *uint64
	logCap, cacheCap                      *int
	rateLimit                             *float64
	rateBurst                             *int
	reqTimeout, grace                     *time.Duration
	workers                               *int
	segment                               *int
	scan                                  *bool
	shards                                *int
	batchMax                              *int
	datadir                               *string
	memcap                                *int64
}

// serveFlags registers every flag of the serve command on fs.
func serveFlags(fs *flag.FlagSet) *serveOpts {
	o := &serveOpts{}
	o.in = fs.String("in", "", "input CSV file (default: the paper's Dataset 2)")
	o.schema = fs.String("schema", "", "schema as name:role:kind[,...]")
	o.protect = fs.String("protect", "auditing", protectHelp("protection to serve under"))
	o.ownerToken = fs.String("ownertoken", os.Getenv("PRIVACY3D_OWNER_TOKEN"),
		"bearer token gating POST /protect (empty disables the endpoint; defaults to $PRIVACY3D_OWNER_TOKEN)")
	o.addr = fs.String("addr", ":8733", "listen address")
	o.minSize = fs.Int("minsize", 3, "query-set-size threshold")
	o.epsilon, o.delta, o.budget = dpFlags(fs)
	o.seed = fs.Uint64("seed", 20070923, "noise seed (dp answers are a pure function of seed, principal and query)")
	o.logCap = fs.Int("querylogcap", sdcquery.DefaultQueryLogCap,
		"owner query-log retention: newest entries kept for GET /log (0 uses the default; -1 retains everything, unbounded)")
	o.cacheCap = fs.Int("cachecap", sdcquery.DefaultAnswerCacheCap,
		"answer-cache entries (0 uses the default; -1 disables caching)")
	o.rateLimit = fs.Float64("ratelimit", 0,
		"per-client admission rate in requests/s; excess gets 429 + Retry-After (0 disables admission control)")
	o.rateBurst = fs.Int("burst", 0, "admission burst: tokens an idle client may accumulate (0 derives from -ratelimit)")
	o.reqTimeout = fs.Duration("reqtimeout", 10*time.Second, "per-request timeout")
	o.grace = fs.Duration("grace", obs.DefaultShutdownGrace, "graceful-shutdown drain window")
	o.workers = workersFlag(fs)
	o.segment = fs.Int("segment", 0,
		"columnar store rows per sealed segment, a positive multiple of 64 (0 uses the default, 8192)")
	o.scan = fs.Bool("scan", false,
		"answer predicates by the compiled row scan instead of the segment indexes (A/B baseline; answers are byte-identical)")
	o.shards = fs.Int("shards", 0,
		"segment shards evaluated in parallel per query (0 uses the default, 16; answers are byte-identical at any count)")
	o.batchMax = fs.Int("batchmax", 0,
		"queries accepted per POST /querybatch request (0 uses the default, 256; negative disables the endpoint)")
	o.datadir = fs.String("datadir", "",
		"directory for a durable columnar store (empty serves memory-only; a directory already holding a store is recovered, and -in must then be unset)")
	o.memcap = fs.Int64("memcap", 0,
		"with -datadir: resident-byte cap for sealed segments — segments beyond it spill to disk and answers stay byte-identical (0 keeps everything resident)")
	return o
}

// validateServeStorage rejects bad storage flags before any data is loaded,
// so misconfiguration surfaces as one clean error instead of a panic or a
// half-built store directory. It returns whether datadir already holds a
// store (the recovery path).
func validateServeStorage(o *serveOpts) (recover bool, err error) {
	if *o.shards < 0 {
		return false, fmt.Errorf("serve: -shards must be >= 0, got %d", *o.shards)
	}
	if *o.memcap < 0 {
		return false, fmt.Errorf("serve: -memcap must be >= 0, got %d", *o.memcap)
	}
	if *o.datadir == "" {
		if *o.memcap > 0 {
			return false, fmt.Errorf("serve: -memcap needs -datadir (there is no disk tier to spill to)")
		}
		return false, nil
	}
	if err := os.MkdirAll(*o.datadir, 0o755); err != nil {
		return false, fmt.Errorf("serve: -datadir: %w", err)
	}
	probe, err := os.CreateTemp(*o.datadir, ".probe-*")
	if err != nil {
		return false, fmt.Errorf("serve: -datadir %s is not writable: %w", *o.datadir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	if store.Exists(*o.datadir) {
		if *o.in != "" {
			return false, fmt.Errorf("serve: -datadir %s already holds a store; recovery serves its committed rows, so -in must be unset (or point -datadir at a fresh directory)", *o.datadir)
		}
		return true, nil
	}
	return false, nil
}

// cmdServe exposes a protected statistical database over HTTP: POST /query
// (structured JSON), POST /sql (raw query text); GET /log shows the owner's
// view of all submitted queries (making the absence of user privacy
// tangible); GET /metrics exposes request, latency and answer-outcome
// counters. The query surface is cached, admission-controlled and
// body-size-limited; the server runs with hardened timeouts and drains
// in-flight queries on SIGINT/SIGTERM before exiting 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	o := serveFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, schema, protect, ownerToken, addr := o.in, o.schema, o.protect, o.ownerToken, o.addr
	minSize, epsilon, delta, budget, seed := o.minSize, o.epsilon, o.delta, o.budget, o.seed
	logCap, cacheCap, rateLimit, rateBurst := o.logCap, o.cacheCap, o.rateLimit, o.rateBurst
	reqTimeout, grace, workers := o.reqTimeout, o.grace, o.workers
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	recovery, err := validateServeStorage(o)
	if err != nil {
		return err
	}
	prot, err := parseProtection(*protect)
	if err != nil {
		return err
	}
	cfg := sdcquery.Config{
		Protection: prot, MinSetSize: *minSize, Seed: *seed,
		Epsilon: *epsilon, Delta: *delta, EpsilonBudget: *budget,
		AnswerCacheCap: *cacheCap,
		SegmentSize:    *o.segment, ForceScan: *o.scan,
		Shards:         *o.shards,
	}
	if *logCap < 0 {
		cfg.UnboundedQueryLog = true
	} else {
		cfg.QueryLogCap = *logCap
	}
	var srv *sdcquery.Server
	if recovery {
		st, err := store.Open(*o.datadir, store.Options{
			SegmentSize: *o.segment, Shards: *o.shards, MemCap: *o.memcap,
		})
		if err != nil {
			return fmt.Errorf("serve: recover %s: %w", *o.datadir, err)
		}
		srv, err = sdcquery.NewServerFromStore(st, cfg)
		if err != nil {
			st.Close()
			return err
		}
	} else {
		var d *dataset.Dataset
		if *in == "" {
			d = dataset.Dataset2()
		} else {
			d, err = loadCSV(*in, *schema)
			if err != nil {
				return err
			}
		}
		cfg.DataDir, cfg.MemCap = *o.datadir, *o.memcap
		srv, err = sdcquery.NewServer(d, cfg)
		if err != nil {
			return err
		}
	}
	// Close commits the durable store's final state (tail included) and
	// releases its directory lock once the server has drained.
	defer srv.Close()
	logger := log.Default()
	reg := obs.NewRegistry()
	obs.RegisterParallelism(reg)
	obs.RegisterStoreTiers(reg)
	// Route per-method masking metrics (sdc_apply_total, sdc_apply_seconds)
	// from the /protect endpoint into this registry.
	sdc.Instrument(reg)
	handler := obs.Chain(sdcquery.NewHandler(srv, sdcquery.HandlerConfig{
		Registry: reg, OwnerToken: *ownerToken,
		RateLimit: *rateLimit, RateBurst: *rateBurst,
		BatchMax: *o.batchMax,
	}),
		obs.Logging(logger),
		obs.Instrument(reg, "/query", "/sql", "/protect", "/log", "/metrics"),
		obs.Recover(reg, logger),
		obs.Timeout(*reqTimeout),
	)
	logger.Printf("serving %d records with %s protection on %s", srv.Rows(), prot, *addr)
	if *o.datadir != "" {
		mode := "created"
		if recovery {
			mode = "recovered"
		}
		logger.Printf("durable store %s in %s (memcap %d bytes; tier gauges at GET /metrics)", mode, *o.datadir, *o.memcap)
	}
	if prot == sdcquery.DifferentialPrivacy {
		logger.Printf("dp: ε=%g per query, budget %g per principal; queries must carry the %s header",
			*epsilon, *budget, sdcquery.PrincipalHeader)
	}
	logger.Printf("the owner sees every query at GET /log — the no-user-privacy side of Section 3")
	if *ownerToken != "" {
		logger.Printf("owner-gated masked releases at POST /protect (methods: %s)", strings.Join(sdc.Names(), ", "))
	} else {
		logger.Printf("POST /protect disabled — set -ownertoken (or $PRIVACY3D_OWNER_TOKEN) to enable owner-side masked releases")
	}
	if *rateLimit > 0 {
		logger.Printf("admission control: %g requests/s per client (burst %d); excess gets 429 + Retry-After", *rateLimit, *rateBurst)
	}
	logger.Printf("request and denial-rate counters at GET /metrics")
	return obs.Run(obs.NewServer(*addr, handler), logger, *grace)
}

// cmdAttack demonstrates the Schlörer tracker against a protected server.
func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file (default: the paper's Dataset 2)")
	schema := fs.String("schema", "", "schema as name:role:kind[,...]")
	protect := fs.String("protect", "size", protectHelp("protection to attack"))
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	var d *dataset.Dataset
	var err error
	if *in == "" {
		d = dataset.Dataset2()
	} else {
		d, err = loadCSV(*in, *schema)
		if err != nil {
			return err
		}
	}
	prot, err := parseProtection(*protect)
	if err != nil {
		return err
	}
	srv, err := sdcquery.NewServer(d, sdcquery.Config{Protection: prot})
	if err != nil {
		return err
	}
	// The canonical target: the paper's small-and-heavy respondent of
	// Dataset 2, pinned by height < 176 ∧ weight > 105.
	tr := sdcquery.NewTracker(srv,
		sdcquery.Predicate{{Col: "height", Op: sdcquery.Lt, V: 176}},
		sdcquery.Cond{Col: "weight", Op: sdcquery.Gt, V: 105})
	res, err := tr.Infer("blood_pressure")
	if err != nil {
		fmt.Printf("tracker attack BLOCKED by %s protection: %v\n", prot, err)
		return nil
	}
	fmt.Printf("tracker attack SUCCEEDED against %s protection using %d queries\n", prot, res.Queries)
	fmt.Printf("inferred: the target predicate matches %.0f respondent(s) with blood pressure sum %.1f\n",
		res.Count, res.Sum)
	if res.Count == 1 {
		fmt.Printf("→ the unique respondent's confidential blood pressure is %.1f mmHg\n", res.Sum)
	}
	return nil
}

// cmdQuery evaluates one SQL-ish statistical query against a CSV (or the
// built-in Dataset 2) under a chosen protection.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file (default: the paper's Dataset 2)")
	schema := fs.String("schema", "", "schema as name:role:kind[,...]")
	protect := fs.String("protect", "none", protectHelp("protection to apply"))
	q := fs.String("q", "", "query, e.g. \"SELECT AVG(blood_pressure) WHERE height < 165\"")
	principal := fs.String("principal", "", "dp: budget-accounting identity the query is asked as")
	epsilon, delta, budget := dpFlags(fs)
	seed := fs.Uint64("seed", 20070923, "noise seed (dp answers are a pure function of seed, principal and query)")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := applyWorkers(*workers); err != nil {
		return err
	}
	var d *dataset.Dataset
	var err error
	if *in == "" {
		d = dataset.Dataset2()
	} else {
		d, err = loadCSV(*in, *schema)
		if err != nil {
			return err
		}
	}
	prot, err := parseProtection(*protect)
	if err != nil {
		return err
	}
	srv, err := sdcquery.NewServer(d, sdcquery.Config{
		Protection: prot, Seed: *seed,
		Epsilon: *epsilon, Delta: *delta, EpsilonBudget: *budget,
	})
	if err != nil {
		return err
	}
	query, err := sdcquery.ParseQuery(*q)
	if err != nil {
		return err
	}
	a, err := srv.AskAs(*principal, query)
	if err != nil {
		return err
	}
	switch {
	case a.Denied:
		fmt.Printf("DENIED: %s\n", a.Reason)
	case a.Interval:
		fmt.Printf("[%g, %g]\n", a.Lo, a.Hi)
	case a.Budgeted:
		fmt.Printf("%g (spent ε=%g, ε=%g remaining)\n", a.Value, a.Epsilon, a.EpsilonRemaining)
	default:
		fmt.Printf("%g\n", a.Value)
	}
	return nil
}

package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/store"
)

// serveOptsFor parses args through the real serve flag set, so the tests
// exercise exactly the defaults and types cmdServe sees.
func serveOptsFor(t *testing.T, args ...string) *serveOpts {
	t.Helper()
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	o := serveFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return o
}

// TestValidateServeStorageRejectsBadFlags pins that storage
// misconfiguration is caught up front with a clean error naming the flag,
// before any CSV is read or store directory touched.
func TestValidateServeStorageRejectsBadFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-shards", "-1"}, "-shards"},
		{[]string{"-memcap", "-5"}, "-memcap"},
		{[]string{"-memcap", "1024"}, "-datadir"}, // memcap without a disk tier
	}
	for _, tc := range cases {
		o := serveOptsFor(t, tc.args...)
		if _, err := validateServeStorage(o); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("validateServeStorage(%v) = %v, want error naming %s", tc.args, err, tc.want)
		}
	}
}

func TestValidateServeStorageUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; no unwritable directories")
	}
	dir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	o := serveOptsFor(t, "-datadir", filepath.Join(dir, "data"))
	if _, err := validateServeStorage(o); err == nil {
		t.Fatal("unwritable -datadir accepted")
	}
}

func TestValidateServeStorageDetectsRecovery(t *testing.T) {
	dir := t.TempDir()
	o := serveOptsFor(t, "-datadir", dir)
	recovery, err := validateServeStorage(o)
	if err != nil || recovery {
		t.Fatalf("fresh dir: recovery=%v err=%v", recovery, err)
	}
	d, err := dataset.Synth("trial", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.CreateFromDataset(dir, d, store.Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	recovery, err = validateServeStorage(o)
	if err != nil || !recovery {
		t.Fatalf("existing store: recovery=%v err=%v", recovery, err)
	}
	// Recovery serves the committed rows, so a conflicting -in is refused.
	o = serveOptsFor(t, "-datadir", dir, "-in", "other.csv")
	if _, err := validateServeStorage(o); err == nil || !strings.Contains(err.Error(), "-in") {
		t.Fatalf("recovery with -in accepted: %v", err)
	}
}

// Command benchserve is the sustained-load gate of the statistical serving
// layer: it drives a Zipf-distributed query workload (a few hot query
// shapes, a long tail — the distribution an interactive statistical server
// actually sees) against sdcquery.Server across client counts, measures
// sustained QPS and p50/p99 latency, and hard-fails unless every answer the
// cached concurrent hot path releases is byte-identical to an uncached
// server answering the same workload serially.
//
//	benchserve -rows 20000 -queries 512 -clients 1,2,8 -duration 1s -out BENCH_serve.json
//
// Per protection (every mode whose answers are a pure function of
// (principal, query): none, size, perturbation, camouflage, sample, dp —
// auditing and overlap restriction answer from mutable history and are
// excluded from the identity gate by construction), the tool:
//
//  1. answers every distinct query shape once on a CACHE-DISABLED server —
//     the uncached serial reference;
//  2. replays a Zipf workload from {1,2,8} concurrent clients against a
//     cached server and fails hard on any byte divergence from the
//     reference (under dp it additionally fails unless the hammered server
//     debited ε exactly once per distinct shape);
//  3. runs a timed sustained-load phase per client count, reporting QPS,
//     sampled p50/p99 latency and the cache hit rate.
//
// A final phase drives the HTTP front end with token-bucket admission
// control enabled and records the admitted/throttled split and the
// Retry-After contract. Exits non-zero if any gate fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privacy3d/internal/dataset"
	"privacy3d/internal/obs"
	"privacy3d/internal/sdcquery"
)

// Entry is one (protection, clients) sustained-load measurement.
type Entry struct {
	Protection string `json:"protection"`
	// Clients is the number of concurrent client goroutines (the identity
	// gate and the load phase both run at this concurrency).
	Clients int `json:"clients"`
	// Queries answered during the timed window.
	Queries int64 `json:"queries"`
	// DurationNs is the timed window's wall clock.
	DurationNs int64 `json:"duration_ns"`
	// SustainedQPS is Queries / wall-clock — the headline number.
	SustainedQPS float64 `json:"sustained_qps"`
	// P50Ns / P99Ns are sampled per-query latency percentiles.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// CacheHitRate is hits/(hits+misses) over the timed window's server.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// IdenticalToUncachedSerial records the identity gate's verdict for
	// this (protection, clients) point: every concurrent cached answer was
	// byte-identical to the uncached serial reference. Always true — the
	// tool exits non-zero otherwise.
	IdenticalToUncachedSerial bool `json:"identical_to_uncached_serial"`
}

// Admission is the HTTP admission-control phase's record.
type Admission struct {
	RateLimit      float64 `json:"rate_limit_rps"`
	Burst          int     `json:"burst"`
	Sent           int     `json:"sent"`
	Admitted       int     `json:"admitted"`
	Throttled      int     `json:"throttled"`
	RetryAfterSeen bool    `json:"retry_after_seen"`
}

// Report is the BENCH_serve.json document.
type Report struct {
	Date            string  `json:"date"`
	Rows            int     `json:"rows"`
	DistinctQueries int     `json:"distinct_queries"`
	ZipfS           float64 `json:"zipf_s"`
	Seed            uint64  `json:"seed"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	// GatedProtections lists the modes under the byte-identity gate;
	// auditing and overlap restriction answer from mutable history (their
	// serial answers depend on interleaving) and are excluded by design.
	GatedProtections []string `json:"gated_protections"`
	// Warning flags measurement conditions under which concurrency scaling
	// is not meaningful (e.g. a single-CPU machine).
	Warning   string    `json:"warning,omitempty"`
	Entries   []Entry   `json:"entries"`
	Admission Admission `json:"admission"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchserve: ")
	rows := flag.Int("rows", 20000, "synthetic dataset rows")
	queries := flag.Int("queries", 512, "distinct query shapes in the workload")
	clientsList := flag.String("clients", "1,2,8", "comma-separated concurrent client counts; must start with 1")
	duration := flag.Duration("duration", time.Second, "timed window per (protection, clients) point")
	zipfS := flag.Float64("zipf", 1.1, "Zipf exponent of the query-shape popularity distribution")
	seed := flag.Uint64("seed", 20070923, "PRNG seed for the synthetic data and workload")
	out := flag.String("out", "BENCH_serve.json", "output JSON file")
	flag.Parse()
	if err := run(*rows, *queries, *clientsList, *duration, *zipfS, *seed, *out); err != nil {
		log.Fatal(err)
	}
}

func parseClients(s string) ([]int, error) {
	var cs []int
	for _, f := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad -clients entry %q", f)
		}
		cs = append(cs, c)
	}
	if len(cs) == 0 || cs[0] != 1 {
		return nil, fmt.Errorf("-clients must start with 1 (the serial reference), got %q", s)
	}
	return cs, nil
}

// cpuWarning returns the single-CPU caveat, or "" on multi-core machines.
func cpuWarning() string {
	if runtime.NumCPU() > 1 {
		return ""
	}
	return "single-CPU machine: concurrent-client scaling measures scheduling overhead, not parallelism"
}

// answerBits collapses an answer to the released bits for the identity gate.
func answerBits(a sdcquery.Answer) [3]uint64 {
	return [3]uint64{math.Float64bits(a.Value), math.Float64bits(a.Lo), math.Float64bits(a.Hi)}
}

// buildWorkload derives the distinct query shapes: COUNT/SUM/AVG over the
// numeric columns with thresholds swept across each column's value range,
// built so no AVG query set is empty (Lt above the minimum, Ge below the
// maximum).
func buildWorkload(d *dataset.Dataset, n int) ([]sdcquery.Query, error) {
	type span struct {
		col    string
		lo, hi float64
	}
	var spans []span
	for j := 0; j < d.Cols(); j++ {
		a := d.Attr(j)
		if a.Kind != dataset.Numeric {
			continue
		}
		lo, hi := d.Float(0, j), d.Float(0, j)
		for i := 1; i < d.Rows(); i++ {
			v := d.Float(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		spans = append(spans, span{a.Name, lo, hi})
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("dataset has no numeric columns")
	}
	aggs := []sdcquery.Agg{sdcquery.Count, sdcquery.Sum, sdcquery.Avg}
	work := make([]sdcquery.Query, 0, n)
	for i := 0; i < n; i++ {
		sp := spans[i%len(spans)]
		frac := float64(i/len(spans)%97+1) / 99 // in (0,1), varied per shape
		q := sdcquery.Query{Agg: aggs[i%len(aggs)], Attr: sp.col}
		if i%2 == 0 {
			q.Where = sdcquery.Predicate{{Col: sp.col, Op: sdcquery.Lt, V: sp.lo + (sp.hi-sp.lo)*frac + 1e-9}}
		} else {
			q.Where = sdcquery.Predicate{{Col: sp.col, Op: sdcquery.Ge, V: sp.hi - (sp.hi-sp.lo)*frac - 1e-9}}
		}
		work = append(work, q)
	}
	return work, nil
}

// zipfSampler samples shape indices with P(i) ∝ 1/(i+1)^s — a few hot
// shapes and a long tail. Each client gets its own sampler (own rng), so
// clients hammer the hot shapes concurrently while still covering the tail.
type zipfSampler struct {
	z *rand.Zipf
}

func newZipfSampler(n int, s float64, seed uint64) *zipfSampler {
	return &zipfSampler{z: rand.NewZipf(dataset.NewRand(seed), s, 1, uint64(n-1))}
}

func (z *zipfSampler) next() int {
	return int(z.z.Uint64())
}

// protections under the identity gate: every mode whose answers are a pure
// function of (principal, query).
var gated = []struct {
	name string
	cfg  sdcquery.Config
}{
	{"none", sdcquery.Config{Protection: sdcquery.NoProtection}},
	{"size", sdcquery.Config{Protection: sdcquery.SizeRestriction, MinSetSize: 3}},
	{"perturbation", sdcquery.Config{Protection: sdcquery.Perturbation, NoiseSD: 2}},
	{"camouflage", sdcquery.Config{Protection: sdcquery.Camouflage}},
	{"sample", sdcquery.Config{Protection: sdcquery.RandomSample, SampleRate: 0.8}},
	{"dp", sdcquery.Config{Protection: sdcquery.DifferentialPrivacy, Epsilon: 0.001, EpsilonBudget: 1e9}},
}

const principal = "bench" // single budget identity so dp answers are comparable across clients

func run(rows, queries int, clientsList string, duration time.Duration, zipfS float64, seed uint64, out string) error {
	cs, err := parseClients(clientsList)
	if err != nil {
		return err
	}
	if rows < 1 || queries < 1 || duration <= 0 {
		return fmt.Errorf("-rows, -queries and -duration must all be positive")
	}
	if zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1 (rand.NewZipf requirement), got %g", zipfS)
	}
	d, err := dataset.Synth("trial", rows, seed)
	if err != nil {
		return err
	}
	work, err := buildWorkload(d, queries)
	if err != nil {
		return err
	}
	log.Printf("workload: %d rows, %d distinct query shapes, zipf s=%.2f, clients %v", rows, len(work), zipfS, cs)

	report := Report{
		Date: time.Now().UTC().Format(time.RFC3339),
		Rows: rows, DistinctQueries: len(work), ZipfS: zipfS, Seed: seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Warning: cpuWarning(),
	}
	for _, g := range gated {
		report.GatedProtections = append(report.GatedProtections, g.name)
	}
	if report.Warning != "" {
		log.Printf("WARNING: %s", report.Warning)
	}

	for _, g := range gated {
		cfg := g.cfg
		cfg.Seed = seed

		// Phase 1: the uncached serial reference — caching disabled, every
		// shape answered once, single goroutine.
		refCfg := cfg
		refCfg.AnswerCacheCap = -1
		refSrv, err := sdcquery.NewServer(d, refCfg)
		if err != nil {
			return fmt.Errorf("%s: %w", g.name, err)
		}
		ref := make(map[string][3]uint64, len(work))
		for _, q := range work {
			a, err := refSrv.AskAs(principal, q)
			if err != nil {
				return fmt.Errorf("%s reference: %q: %w", g.name, q, err)
			}
			ref[q.String()] = answerBits(a)
		}

		for _, clients := range cs {
			// Phase 2: identity gate — a cached server hammered by
			// `clients` goroutines replaying a Zipf workload (every shape
			// is also visited at least once) must release byte-identical
			// answers to the uncached serial reference.
			srv, err := sdcquery.NewServer(d, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", g.name, err)
			}
			var wg sync.WaitGroup
			gateErrs := make([]error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					z := newZipfSampler(len(work), zipfS, seed+uint64(c)*7919+1)
					iters := 4*len(work)/clients + 1
					if c == 0 && iters < len(work) {
						iters = len(work) // client 0 must complete its sweep
					}
					for i := 0; i < iters; i++ {
						idx := z.next()
						if i < len(work) && c == 0 {
							idx = i // client 0 sweeps every shape once
						}
						q := work[idx]
						a, err := srv.AskAs(principal, q)
						if err != nil {
							gateErrs[c] = fmt.Errorf("%q: %w", q, err)
							return
						}
						if answerBits(a) != ref[q.String()] {
							gateErrs[c] = fmt.Errorf("%q: cached concurrent answer diverges from uncached serial reference", q)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			for _, err := range gateErrs {
				if err != nil {
					return fmt.Errorf("IDENTITY GATE FAILED: %s clients=%d: %w", g.name, clients, err)
				}
			}
			if cfg.Protection == sdcquery.DifferentialPrivacy {
				// The hammer visited every shape at least once, many several
				// times: ε must have been debited exactly once per shape.
				rem, _ := srv.BudgetRemaining(principal)
				want := cfg.EpsilonBudget - cfg.Epsilon*float64(len(work))
				if math.Abs(rem-want) > 1e-6 {
					return fmt.Errorf("ACCOUNTING GATE FAILED: dp clients=%d: remaining ε %g, want %g (one debit per distinct shape)", clients, rem, want)
				}
			}

			// Phase 3: timed sustained load on a fresh cached server.
			loadSrv, err := sdcquery.NewServer(d, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", g.name, err)
			}
			var stop atomic.Bool
			counts := make([]int64, clients)
			samples := make([][]int64, clients) // every 64th query's latency
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					z := newZipfSampler(len(work), zipfS, seed+uint64(c)*104729+3)
					for !stop.Load() {
						q := work[z.next()]
						t0 := time.Now()
						if _, err := loadSrv.AskAs(principal, q); err != nil {
							gateErrs[c] = err
							return
						}
						if counts[c]%64 == 0 {
							samples[c] = append(samples[c], time.Since(t0).Nanoseconds())
						}
						counts[c]++
					}
				}(c)
			}
			time.Sleep(duration)
			stop.Store(true)
			wg.Wait()
			elapsed := time.Since(start)
			for _, err := range gateErrs {
				if err != nil {
					return fmt.Errorf("%s clients=%d load phase: %w", g.name, clients, err)
				}
			}
			var total int64
			var lat []int64
			for c := 0; c < clients; c++ {
				total += counts[c]
				lat = append(lat, samples[c]...)
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			pct := func(p float64) int64 {
				if len(lat) == 0 {
					return 0
				}
				i := int(p * float64(len(lat)-1))
				return lat[i]
			}
			hits, misses, _, _ := loadSrv.CacheStats()
			hitRate := 0.0
			if hits+misses > 0 {
				hitRate = float64(hits) / float64(hits+misses)
			}
			e := Entry{
				Protection: g.name, Clients: clients,
				Queries: total, DurationNs: elapsed.Nanoseconds(),
				SustainedQPS:              float64(total) / elapsed.Seconds(),
				P50Ns:                     pct(0.50),
				P99Ns:                     pct(0.99),
				CacheHitRate:              hitRate,
				IdenticalToUncachedSerial: true,
			}
			report.Entries = append(report.Entries, e)
			log.Printf("%-13s clients=%-2d %10.0f q/s  p50 %9s  p99 %9s  hit-rate %4.1f%%  identity OK",
				g.name, clients, e.SustainedQPS,
				time.Duration(e.P50Ns), time.Duration(e.P99Ns), 100*hitRate)
		}
	}

	adm, err := admissionPhase(d, seed)
	if err != nil {
		return err
	}
	report.Admission = *adm
	log.Printf("admission: sent %d → admitted %d, throttled %d (Retry-After seen: %v)",
		adm.Sent, adm.Admitted, adm.Throttled, adm.RetryAfterSeen)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%d entries); all cached answers byte-identical to the uncached serial path", out, len(report.Entries))
	return nil
}

// admissionPhase drives the HTTP front end with token-bucket admission
// control and verifies the shed contract: excess requests get 429 +
// Retry-After, admitted ones get real answers.
func admissionPhase(d *dataset.Dataset, seed uint64) (*Admission, error) {
	srv, err := sdcquery.NewServer(d, sdcquery.Config{Protection: sdcquery.Perturbation, Seed: seed})
	if err != nil {
		return nil, err
	}
	adm := &Admission{RateLimit: 50, Burst: 10, Sent: 200}
	ts := httptest.NewServer(sdcquery.NewHandler(srv, sdcquery.HandlerConfig{
		Registry:  obs.NewRegistry(),
		RateLimit: adm.RateLimit,
		RateBurst: adm.Burst,
	}))
	defer ts.Close()
	body := `{"agg":"COUNT","where":[{"col":"height","op":"<","v":175}]}`
	for i := 0; i < adm.Sent; i++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set(sdcquery.PrincipalHeader, principal)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			adm.Admitted++
		case http.StatusTooManyRequests:
			adm.Throttled++
			if resp.Header.Get("Retry-After") != "" {
				adm.RetryAfterSeen = true
			}
		default:
			resp.Body.Close()
			return nil, fmt.Errorf("admission phase: unexpected status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if adm.Throttled == 0 {
		return nil, fmt.Errorf("ADMISSION GATE FAILED: %d rapid requests against %g rps / burst %d were never throttled", adm.Sent, adm.RateLimit, adm.Burst)
	}
	if !adm.RetryAfterSeen {
		return nil, fmt.Errorf("ADMISSION GATE FAILED: throttled responses lacked Retry-After")
	}
	return adm, nil
}

// Command benchstore is the perf gate of the columnar segment store: it
// measures cache-miss query throughput of the indexed path (zone maps +
// sorted per-segment indexes + bitmap intersection) against the compiled
// row-scan baseline on synthetic clinical-trial data, and hard-fails unless
//
//  1. every indexed answer is byte-identical to the scan-path answer AND to
//     the seed evaluator Query.Evaluate (identity gate),
//
//  2. the indexed path sustains at least -minspeedup× the scan path's QPS
//     on selective predicates at the largest row count (speedup gate), and
//
//  3. a snapshot pinned before a burst of concurrent ingest keeps returning
//     bit-identical counts and sums while the store grows underneath it —
//     the property the query auditor's view depends on (snapshot gate).
//
//     benchstore -rows 100000,1000000 -workers 1,2,8 -out BENCH_store.json
//
// Both paths run with the answer cache disabled, so every measured query
// pays full predicate evaluation: the numbers isolate the storage engine,
// not the cache. Workers sweeps par.SetWorkers, which bounds the per-segment
// fan-out of both paths. Exits non-zero if any gate fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
	"privacy3d/internal/sdcquery"
	"privacy3d/internal/store"
)

// Entry is one (rows, workers, workload, path) timed measurement.
type Entry struct {
	Rows    int `json:"rows"`
	Workers int `json:"workers"`
	// Workload is "selective" (narrow bands, the index's home turf) or
	// "broad" (threshold sweeps that match large fractions of the data).
	Workload string `json:"workload"`
	// Path is "indexed" (segment indexes + bitmaps), "scan" (the compiled
	// row-at-a-time baseline, -scan on the serve command), or "batched"
	// (AskBatch answering the whole workload in one sharded column sweep;
	// latency percentiles are then per batch call, not per query).
	Path string `json:"path"`
	// Queries answered during the timed window (cache disabled: every one
	// paid full predicate evaluation).
	Queries    int64   `json:"queries"`
	DurationNs int64   `json:"duration_ns"`
	QPS        float64 `json:"qps"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
}

// Speedup is the headline gate record: indexed vs. scan cache-miss QPS on
// the selective workload, per (rows, workers).
type Speedup struct {
	Rows       int     `json:"rows"`
	Workers    int     `json:"workers"`
	IndexedQPS float64 `json:"indexed_qps"`
	ScanQPS    float64 `json:"scan_qps"`
	Speedup    float64 `json:"speedup"`
	// Gated marks the points under the -minspeedup requirement (the
	// largest row count, where indexing matters most).
	Gated bool `json:"gated"`
}

// ScalingGate records the worker-scaling requirement on the indexed path:
// on a multi-core machine, QPS at the largest worker count must beat QPS at
// the smallest by at least -minscaling× at the largest row count. On a
// single-CPU machine the gate degrades to the report warning.
type ScalingGate struct {
	Rows        int     `json:"rows"`
	BaseWorkers int     `json:"base_workers"`
	MaxWorkers  int     `json:"max_workers"`
	BaseQPS     float64 `json:"base_qps"`
	MaxQPS      float64 `json:"max_qps"`
	Scaling     float64 `json:"scaling"`
	MinScaling  float64 `json:"min_scaling"`
	Enforced    bool    `json:"enforced"`
}

// SnapshotGate records the concurrent-ingest pinning check.
type SnapshotGate struct {
	Rows     int  `json:"rows"`
	Ingested int  `json:"ingested"`
	Reevals  int  `json:"reevals"`
	Stable   bool `json:"stable"`
}

// PersistGate records the tiered-storage check: the dataset is ingested
// into a data directory, the store closed, then reopened cold twice — once
// uncapped and once with a resident-byte cap well below the dataset's
// decoded footprint, so most answers read segments through the disk tier's
// pager. Both reopens must answer the selective workload byte-identically
// to the resident store.
type PersistGate struct {
	Rows          int   `json:"rows"`
	Queries       int   `json:"queries"`
	ResidentBytes int64 `json:"resident_bytes"`
	MemCap        int64 `json:"mem_cap"`
	SpilledSegs   int   `json:"spilled_segments"`
	PagerMisses   int64 `json:"pager_misses"`
	Identical     bool  `json:"identical"`
}

// Report is the BENCH_store.json document.
type Report struct {
	Date            string  `json:"date"`
	RowSizes        []int   `json:"row_sizes"`
	Workers         []int   `json:"workers"`
	SelectiveShapes int     `json:"selective_shapes"`
	BroadShapes     int     `json:"broad_shapes"`
	Seed            uint64  `json:"seed"`
	MinSpeedup      float64 `json:"min_speedup"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	// Shards is the store's segment-shard count; BatchWidth the number of
	// queries each timed AskBatch call carries on the "batched" path.
	Shards     int `json:"shards"`
	BatchWidth int `json:"batch_width"`
	// Warning flags measurement conditions under which worker scaling is
	// not meaningful (e.g. a single-CPU machine).
	Warning string `json:"warning,omitempty"`
	// IdenticalAnswers records the identity gate's verdict: for every shape
	// at every row count, indexed ≡ scan ≡ Query.Evaluate, bit for bit.
	// Always true — the tool exits non-zero otherwise.
	IdenticalAnswers bool          `json:"identical_answers"`
	Entries          []Entry       `json:"entries"`
	Speedups         []Speedup     `json:"speedups"`
	Scaling          *ScalingGate  `json:"scaling,omitempty"`
	Snapshot         *SnapshotGate `json:"snapshot"`
	Persist          *PersistGate  `json:"persist"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchstore: ")
	rowsList := flag.String("rows", "100000,1000000", "comma-separated synthetic dataset sizes; the speedup gate applies at the largest")
	workersList := flag.String("workers", "1,2,8", "comma-separated par.SetWorkers values")
	shapes := flag.Int("queries", 24, "query shapes per workload class")
	duration := flag.Duration("duration", 500*time.Millisecond, "timed window per (rows, workers, workload, path) point")
	minSpeedup := flag.Float64("minspeedup", 5, "required indexed/scan QPS ratio on selective predicates at the largest row count")
	minScaling := flag.Float64("minscaling", 2, "required indexed QPS at max workers vs workers=1 at the largest row count (skipped on single-CPU machines)")
	ingest := flag.Int("ingest", 25000, "rows appended concurrently during the snapshot gate")
	seed := flag.Uint64("seed", 20070923, "PRNG seed for the synthetic data")
	out := flag.String("out", "BENCH_store.json", "output JSON file")
	flag.Parse()
	if err := run(*rowsList, *workersList, *shapes, *duration, *minSpeedup, *minScaling, *ingest, *seed, *out); err != nil {
		log.Fatal(err)
	}
}

func parseInts(flagName, s string) ([]int, error) {
	var vs []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad %s entry %q", flagName, f)
		}
		vs = append(vs, v)
	}
	if len(vs) == 0 {
		return nil, fmt.Errorf("%s must list at least one value", flagName)
	}
	return vs, nil
}

// cpuWarning returns the single-CPU caveat, or "" on multi-core machines.
func cpuWarning() string {
	if runtime.NumCPU() > 1 {
		return ""
	}
	return "single-CPU machine: worker scaling measures scheduling overhead, not parallelism"
}

// answerBits collapses an answer to the released bits for the identity gate.
func answerBits(a sdcquery.Answer) [3]uint64 {
	return [3]uint64{math.Float64bits(a.Value), math.Float64bits(a.Lo), math.Float64bits(a.Hi)}
}

// span is a numeric column's observed value range.
type span struct {
	col    string
	lo, hi float64
}

func numericSpans(d *dataset.Dataset) []span {
	var spans []span
	for j := 0; j < d.Cols(); j++ {
		a := d.Attr(j)
		if a.Kind != dataset.Numeric {
			continue
		}
		lo, hi := d.Float(0, j), d.Float(0, j)
		for i := 1; i < d.Rows(); i++ {
			v := d.Float(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		spans = append(spans, span{a.Name, lo, hi})
	}
	return spans
}

// selectiveWorkload builds narrow-band conjunctions — col ∈ [v, v+δ) with δ
// a fraction of the column's range, every third shape additionally pinned to
// the rare categorical value — the shapes where a sorted index turns a full
// sweep into two binary searches. COUNT and SUM only: a band in a sparse
// tail may legitimately match nothing, which AVG would reject.
func selectiveWorkload(d *dataset.Dataset, spans []span, n int) []sdcquery.Query {
	work := make([]sdcquery.Query, 0, n)
	for i := 0; i < n; i++ {
		sp := spans[i%len(spans)]
		pos := 0.25 + 0.5*float64(i/len(spans)%13)/13 // central band: bands land where data lives
		v := sp.lo + (sp.hi-sp.lo)*pos
		delta := (sp.hi - sp.lo) * 0.002
		where := sdcquery.Predicate{
			{Col: sp.col, Op: sdcquery.Ge, V: v},
			{Col: sp.col, Op: sdcquery.Lt, V: v + delta},
		}
		if i%3 == 0 {
			where = append(where, sdcquery.Cond{Col: "aids", Op: sdcquery.Eq, S: "Y", Str: true})
		}
		q := sdcquery.Query{Agg: sdcquery.Count, Where: where}
		if i%2 == 1 {
			q = sdcquery.Query{Agg: sdcquery.Sum, Attr: "blood_pressure", Where: where}
		}
		work = append(work, q)
	}
	return work
}

// broadWorkload sweeps COUNT/SUM/AVG thresholds across each numeric
// column's range, built so no AVG query set is empty (Lt above the minimum,
// Ge below the maximum) — the shapes where the index degrades to a full
// range and must still not lose to the scan by more than bookkeeping.
func broadWorkload(d *dataset.Dataset, spans []span, n int) []sdcquery.Query {
	aggs := []sdcquery.Agg{sdcquery.Count, sdcquery.Sum, sdcquery.Avg}
	work := make([]sdcquery.Query, 0, n)
	for i := 0; i < n; i++ {
		sp := spans[i%len(spans)]
		frac := float64(i/len(spans)%97+1) / 99
		q := sdcquery.Query{Agg: aggs[i%len(aggs)], Attr: sp.col}
		if i%2 == 0 {
			q.Where = sdcquery.Predicate{{Col: sp.col, Op: sdcquery.Lt, V: sp.lo + (sp.hi-sp.lo)*frac + 1e-9}}
		} else {
			q.Where = sdcquery.Predicate{{Col: sp.col, Op: sdcquery.Ge, V: sp.hi - (sp.hi-sp.lo)*frac - 1e-9}}
		}
		work = append(work, q)
	}
	return work
}

func run(rowsList, workersList string, shapes int, duration time.Duration, minSpeedup, minScaling float64, ingest int, seed uint64, out string) error {
	sizes, err := parseInts("-rows", rowsList)
	if err != nil {
		return err
	}
	workers, err := parseInts("-workers", workersList)
	if err != nil {
		return err
	}
	if shapes < 1 || duration <= 0 || ingest < 1 {
		return fmt.Errorf("-queries, -duration and -ingest must all be positive")
	}
	largest := sizes[0]
	for _, r := range sizes {
		if r > largest {
			largest = r
		}
	}

	report := Report{
		Date:     time.Now().UTC().Format(time.RFC3339),
		RowSizes: sizes, Workers: workers,
		SelectiveShapes: shapes, BroadShapes: shapes,
		Seed: seed, MinSpeedup: minSpeedup,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Warning:          cpuWarning(),
		IdenticalAnswers: true,
	}
	if report.Warning != "" {
		log.Printf("WARNING: %s", report.Warning)
	}

	for _, rows := range sizes {
		d, err := dataset.Synth("trial", rows, seed)
		if err != nil {
			return err
		}
		spans := numericSpans(d)
		workloads := []struct {
			name string
			qs   []sdcquery.Query
		}{
			{"selective", selectiveWorkload(d, spans, shapes)},
			{"broad", broadWorkload(d, spans, shapes)},
		}

		// Both servers run cache-disabled so every answer below is a miss.
		indexed, err := sdcquery.NewServer(d, sdcquery.Config{Protection: sdcquery.NoProtection, AnswerCacheCap: -1})
		if err != nil {
			return err
		}
		scan, err := sdcquery.NewServer(d, sdcquery.Config{Protection: sdcquery.NoProtection, AnswerCacheCap: -1, ForceScan: true})
		if err != nil {
			return err
		}

		// Identity gate: indexed ≡ scan ≡ the seed evaluator, bit for bit,
		// on every shape of both workloads. The selective refs are kept so
		// the batched gate below can re-check them at every worker count
		// without re-running the O(rows) seed evaluator.
		selRefs := make([][3]uint64, 0, shapes)
		for _, w := range workloads {
			for _, q := range w.qs {
				want, err := q.Evaluate(d)
				if err != nil {
					return fmt.Errorf("rows=%d %s: Evaluate(%q): %w", rows, w.name, q, err)
				}
				ai, err := indexed.Ask(q)
				if err != nil {
					return fmt.Errorf("rows=%d %s: indexed Ask(%q): %w", rows, w.name, q, err)
				}
				as, err := scan.Ask(q)
				if err != nil {
					return fmt.Errorf("rows=%d %s: scan Ask(%q): %w", rows, w.name, q, err)
				}
				ref := [3]uint64{math.Float64bits(want), 0, 0}
				if answerBits(ai) != ref || answerBits(as) != ref {
					return fmt.Errorf("IDENTITY GATE FAILED: rows=%d %q: indexed %x, scan %x, Evaluate %x",
						rows, q, answerBits(ai), answerBits(as), ref)
				}
				if w.name == "selective" {
					selRefs = append(selRefs, ref)
				}
			}
		}
		log.Printf("rows=%-8d identity OK: %d shapes, indexed ≡ scan ≡ Evaluate", rows, 2*shapes)
		report.Shards = indexed.Shards()
		report.BatchWidth = shapes

		// Timed phase: cache-miss QPS and latency percentiles per
		// (workers, workload, path).
		for _, w := range workers {
			par.SetWorkers(w)
			// Batched identity gate at this worker count: one AskBatch must
			// answer the whole selective set bit-identically to the per-query
			// refs, on both the sharded and the forced-scan path.
			for _, p := range []struct {
				name string
				srv  *sdcquery.Server
			}{{"indexed", indexed}, {"scan", scan}} {
				answers, errs := p.srv.AskBatch("", workloads[0].qs)
				for i, q := range workloads[0].qs {
					if errs[i] != nil {
						return fmt.Errorf("rows=%d workers=%d %s AskBatch(%q): %w", rows, w, p.name, q, errs[i])
					}
					if answerBits(answers[i]) != selRefs[i] {
						return fmt.Errorf("BATCH IDENTITY GATE FAILED: rows=%d workers=%d %s %q: batch %x, per-query %x",
							rows, w, p.name, q, answerBits(answers[i]), selRefs[i])
					}
				}
			}
			for _, wl := range workloads {
				var qps [2]float64
				for pi, p := range []struct {
					name string
					srv  *sdcquery.Server
				}{{"indexed", indexed}, {"scan", scan}} {
					e, err := timedPhase(rows, w, wl.name, p.name, p.srv, wl.qs, duration)
					if err != nil {
						return err
					}
					qps[pi] = e.QPS
					report.Entries = append(report.Entries, *e)
					log.Printf("rows=%-8d workers=%-2d %-9s %-7s %10.0f q/s  p50 %9s  p99 %9s",
						rows, w, wl.name, p.name, e.QPS, time.Duration(e.P50Ns), time.Duration(e.P99Ns))
				}
				if wl.name == "selective" {
					sp := Speedup{
						Rows: rows, Workers: w,
						IndexedQPS: qps[0], ScanQPS: qps[1],
						Speedup: qps[0] / qps[1],
						Gated:   rows == largest,
					}
					report.Speedups = append(report.Speedups, sp)
					if sp.Gated && sp.Speedup < minSpeedup {
						return fmt.Errorf("SPEEDUP GATE FAILED: rows=%d workers=%d selective: indexed %.0f q/s vs scan %.0f q/s = %.1f×, need ≥ %.1f×",
							rows, w, sp.IndexedQPS, sp.ScanQPS, sp.Speedup, minSpeedup)
					}
				}
			}
			// Batched path: the same selective queries, answered one
			// AskBatch at a time instead of one Ask at a time.
			e, err := timedBatchPhase(rows, w, indexed, workloads[0].qs, duration)
			if err != nil {
				return err
			}
			report.Entries = append(report.Entries, *e)
			log.Printf("rows=%-8d workers=%-2d %-9s %-7s %10.0f q/s  p50 %9s  p99 %9s",
				rows, w, "selective", e.Path, e.QPS, time.Duration(e.P50Ns), time.Duration(e.P99Ns))
		}

		// Snapshot gate once, at the smallest row count (the property is
		// size-independent; the big sizes would only slow the gate down).
		if rows == sizes[0] {
			sg, err := snapshotGate(d, ingest, 64)
			if err != nil {
				return err
			}
			report.Snapshot = sg
			log.Printf("rows=%-8d snapshot OK: %d re-evals bit-stable while %d rows ingested concurrently",
				rows, sg.Reevals, sg.Ingested)

			// Persistence gate, same size rationale: byte-identity across a
			// close/reopen cycle and across the spilled tier does not depend
			// on row count.
			pg, err := persistGate(d, workloads[0].qs, selRefs)
			if err != nil {
				return err
			}
			report.Persist = pg
			log.Printf("rows=%-8d persist OK: cold reopen byte-identical on %d queries; memcap %d of %d bytes kept %d segments spilled (%d pager misses)",
				rows, pg.Queries, pg.MemCap, pg.ResidentBytes, pg.SpilledSegs, pg.PagerMisses)
		}
	}

	// Scaling gate: indexed QPS at the largest worker count vs. the smallest,
	// at the largest row count. Enforced only on multi-core machines — on a
	// single CPU, worker fan-out measures scheduling overhead, so the gate
	// degrades to the warning already in the report.
	if sg := scalingGate(report.Speedups, workers, largest, minScaling); sg != nil {
		report.Scaling = sg
		switch {
		case !sg.Enforced:
			log.Printf("scaling gate skipped (%s): workers=%d %.0f q/s vs workers=%d %.0f q/s",
				report.Warning, sg.MaxWorkers, sg.MaxQPS, sg.BaseWorkers, sg.BaseQPS)
		case sg.Scaling < minScaling:
			return fmt.Errorf("SCALING GATE FAILED: rows=%d indexed: workers=%d %.0f q/s vs workers=%d %.0f q/s = %.2f×, need ≥ %.1f×",
				sg.Rows, sg.MaxWorkers, sg.MaxQPS, sg.BaseWorkers, sg.BaseQPS, sg.Scaling, minScaling)
		default:
			log.Printf("rows=%-8d scaling OK: workers=%d %.0f q/s vs workers=%d %.0f q/s = %.2f× (need ≥ %.1f×)",
				sg.Rows, sg.MaxWorkers, sg.MaxQPS, sg.BaseWorkers, sg.BaseQPS, sg.Scaling, minScaling)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%d entries); every indexed answer byte-identical to the scan path and the seed evaluator", out, len(report.Entries))
	return nil
}

// scalingGate reduces the selective Speedup records at the largest row count
// to a base-vs-max-workers comparison. Returns nil when the workers sweep has
// a single point, so there is nothing to compare.
func scalingGate(speedups []Speedup, workers []int, largest int, minScaling float64) *ScalingGate {
	base, max := workers[0], workers[0]
	for _, w := range workers {
		if w < base {
			base = w
		}
		if w > max {
			max = w
		}
	}
	if base == max {
		return nil
	}
	sg := &ScalingGate{
		Rows: largest, BaseWorkers: base, MaxWorkers: max,
		MinScaling: minScaling,
		Enforced:   runtime.NumCPU() > 1,
	}
	for _, sp := range speedups {
		if sp.Rows != largest {
			continue
		}
		if sp.Workers == base {
			sg.BaseQPS = sp.IndexedQPS
		}
		if sp.Workers == max {
			sg.MaxQPS = sp.IndexedQPS
		}
	}
	if sg.BaseQPS > 0 {
		sg.Scaling = sg.MaxQPS / sg.BaseQPS
	}
	return sg
}

// timedPhase drives one server with one workload, round-robin, for at least
// the duration and at least eight queries, recording every query's latency.
func timedPhase(rows, workers int, workload, path string, srv *sdcquery.Server, qs []sdcquery.Query, duration time.Duration) (*Entry, error) {
	var lat []int64
	var n int64
	start := time.Now()
	for time.Since(start) < duration || n < 8 {
		q := qs[int(n)%len(qs)]
		t0 := time.Now()
		if _, err := srv.Ask(q); err != nil {
			return nil, fmt.Errorf("rows=%d %s/%s: Ask(%q): %w", rows, workload, path, q, err)
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
		n++
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p*float64(len(lat)-1))]
	}
	return &Entry{
		Rows: rows, Workers: workers, Workload: workload, Path: path,
		Queries: n, DurationNs: elapsed.Nanoseconds(),
		QPS:   float64(n) / elapsed.Seconds(),
		P50Ns: pct(0.50), P99Ns: pct(0.99),
	}, nil
}

// timedBatchPhase drives one server with whole-workload AskBatch calls for
// at least the duration and at least one batch. QPS counts queries; the
// latency percentiles are per batch call.
func timedBatchPhase(rows, workers int, srv *sdcquery.Server, qs []sdcquery.Query, duration time.Duration) (*Entry, error) {
	var lat []int64
	var n int64
	start := time.Now()
	for time.Since(start) < duration || n == 0 {
		t0 := time.Now()
		_, errs := srv.AskBatch("", qs)
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("rows=%d batched: AskBatch(%q): %w", rows, qs[i], err)
			}
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
		n += int64(len(qs))
	}
	elapsed := time.Since(start)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		return lat[int(p*float64(len(lat)-1))]
	}
	return &Entry{
		Rows: rows, Workers: workers, Workload: "selective", Path: "batched",
		Queries: n, DurationNs: elapsed.Nanoseconds(),
		QPS:   float64(n) / elapsed.Seconds(),
		P50Ns: pct(0.50), P99Ns: pct(0.99),
	}, nil
}

// snapshotGate pins a snapshot, then keeps re-evaluating a predicate and a
// confidential-attribute sum against it while another goroutine appends
// rows. Every re-evaluation must return the same count and the bit-identical
// sum — the view an in-flight audit holds must not move — and afterwards a
// fresh snapshot must see every ingested row.
func snapshotGate(d *dataset.Dataset, ingest, reevals int) (*SnapshotGate, error) {
	st, err := store.FromDataset(d, 0)
	if err != nil {
		return nil, err
	}
	snap := st.Snapshot()
	wcol := numericSpans(d)[1] // weight
	conds := []store.Cond{{Col: wcol.col, Op: store.Ge, V: wcol.lo + (wcol.hi-wcol.lo)*0.5}}
	bp := snap.Index("blood_pressure")
	bm, err := snap.Eval(conds)
	if err != nil {
		return nil, err
	}
	refCount, refSum := bm.Count(), math.Float64bits(snap.Sum(bm, bp))

	attrs := d.Attrs()
	done := make(chan error, 1)
	go func() {
		vals := make([]any, len(attrs))
		for i := 0; i < ingest; i++ {
			src := i % d.Rows()
			for j, a := range attrs {
				if a.Kind == dataset.Numeric {
					vals[j] = d.Float(src, j)
				} else {
					vals[j] = d.Cat(src, j)
				}
			}
			if err := st.Append(vals...); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < reevals; i++ {
		bm, err := snap.Eval(conds)
		if err != nil {
			return nil, err
		}
		if c, s := bm.Count(), math.Float64bits(snap.Sum(bm, bp)); c != refCount || s != refSum {
			return nil, fmt.Errorf("SNAPSHOT GATE FAILED: pinned view drifted under ingest: count %d→%d, sum bits %x→%x", refCount, c, refSum, s)
		}
	}
	if err := <-done; err != nil {
		return nil, err
	}
	if got, want := st.Rows(), d.Rows()+ingest; got != want {
		return nil, fmt.Errorf("SNAPSHOT GATE FAILED: store has %d rows after ingest, want %d", got, want)
	}
	if snap.Rows() != d.Rows() {
		return nil, fmt.Errorf("SNAPSHOT GATE FAILED: pinned snapshot grew to %d rows", snap.Rows())
	}
	return &SnapshotGate{Rows: d.Rows(), Ingested: ingest, Reevals: reevals, Stable: true}, nil
}

// persistGate ingests d into a temporary data directory, closes the store,
// and reopens it cold twice: first uncapped, then with a resident-byte cap
// at a quarter of the decoded footprint so most segments answer from the
// disk tier. Every answer in both runs must match refs — the bit patterns
// the resident identity gate already certified against the seed evaluator.
func persistGate(d *dataset.Dataset, qs []sdcquery.Query, refs [][3]uint64) (*PersistGate, error) {
	dir, err := os.MkdirTemp("", "benchstore-persist-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	st, err := store.CreateFromDataset(dir, d, store.Options{})
	if err != nil {
		return nil, err
	}
	residentBytes := st.TierStats().ResidentBytes
	if err := st.Close(); err != nil {
		return nil, err
	}

	askAll := func(st *store.Store, label string) error {
		srv, err := sdcquery.NewServerFromStore(st, sdcquery.Config{Protection: sdcquery.NoProtection, AnswerCacheCap: -1})
		if err != nil {
			st.Close()
			return err
		}
		for i, q := range qs {
			a, err := srv.Ask(q)
			if err != nil {
				srv.Close()
				return fmt.Errorf("%s: Ask(%q): %w", label, q, err)
			}
			if answerBits(a) != refs[i] {
				srv.Close()
				return fmt.Errorf("PERSIST GATE FAILED: %s: %q answered %x, resident store %x",
					label, q, answerBits(a), refs[i])
			}
		}
		return nil
	}

	// Cold reopen, everything promotable: recovery must serve the exact
	// sealed state the ingest committed.
	st, err = store.Open(dir, store.Options{})
	if err != nil {
		return nil, fmt.Errorf("persist gate: reopen: %w", err)
	}
	if err := askAll(st, "cold open"); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}

	// Spill run: the cap keeps most of the dataset on disk, so answers read
	// columns through the pager; they must still be bit-identical.
	memCap := residentBytes / 4
	if memCap < 1 {
		memCap = 1 // a cap below one segment still admits one at a time
	}
	st, err = store.Open(dir, store.Options{MemCap: memCap})
	if err != nil {
		return nil, fmt.Errorf("persist gate: capped reopen: %w", err)
	}
	if err := askAll(st, fmt.Sprintf("memcap %d", memCap)); err != nil {
		return nil, err
	}
	ts := st.TierStats()
	if err := st.Close(); err != nil {
		return nil, err
	}
	if ts.Spilled == 0 {
		return nil, fmt.Errorf("PERSIST GATE FAILED: memcap %d of %d bytes left no segment spilled", memCap, residentBytes)
	}
	return &PersistGate{
		Rows: d.Rows(), Queries: len(qs),
		ResidentBytes: residentBytes, MemCap: memCap,
		SpilledSegs: ts.Spilled, PagerMisses: ts.PagerMisses,
		Identical: true,
	}, nil
}

// Command pird runs an information-theoretic PIR replica over HTTP, or
// fetches a block privately from a set of replicas — the deployable face of
// the user-privacy dimension.
//
//	pird serve -in blocks.csv -addr :9001
//	pird fetch -servers http://a:9001,http://b:9002 -index 17
//
// The input file holds one block per line; every replica must serve the
// identical file (replication is PIR's trust model: privacy holds as long
// as the replicas do not collude).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"privacy3d/internal/obs"
	"privacy3d/internal/par"
	"privacy3d/internal/pir"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pird: ")
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: pird serve|fetch [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "fetch":
		err = fetch(os.Args[2:])
	default:
		fmt.Fprintln(os.Stderr, "usage: pird serve|fetch [flags]")
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// loadBlocks reads one block per line, padding to a common size.
func loadBlocks(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines [][]byte
	maxLen := 1
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		if len(line) > maxLen {
			maxLen = len(line)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("no blocks in %s", path)
	}
	for i, l := range lines {
		padded := make([]byte, maxLen)
		copy(padded, l)
		lines[i] = padded
	}
	return lines, nil
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	in := fs.String("in", "", "file with one block per line")
	addr := fs.String("addr", ":9001", "listen address")
	reqTimeout := fs.Duration("reqtimeout", 10*time.Second, "per-request timeout")
	grace := fs.Duration("grace", obs.DefaultShutdownGrace, "graceful-shutdown drain window")
	workers := fs.Int("workers", 0, "answer-kernel worker-pool size (0 = all CPUs); answers are byte-identical at any setting")
	logCap := fs.Int("querylog", pir.DefaultQueryLogCap, "query-log entries retained (newest window; drops are counted at /metrics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be ≥ 0, got %d", *workers)
	}
	par.SetWorkers(*workers)
	blocks, err := loadBlocks(*in)
	if err != nil {
		return err
	}
	srv, err := pir.NewITServer(blocks)
	if err != nil {
		return err
	}
	srv.SetQueryLogCap(*logCap)
	logger := log.Default()
	reg := obs.NewRegistry()
	obs.RegisterParallelism(reg)
	obs.RegisterStoreTiers(reg)
	registerPIRMetrics(reg, srv)
	answerHist := reg.Histogram("pir_answer_seconds", obs.DefaultKernelBuckets)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/", observeAnswers(pir.NewHTTPServer(srv), answerHist))
	handler := obs.Chain(mux,
		obs.Logging(logger),
		obs.Instrument(reg, "/pir", "/meta", "/metrics"),
		obs.Recover(reg, logger),
		obs.Timeout(*reqTimeout),
	)
	logger.Printf("serving %d blocks of %d bytes on %s with %d answer worker(s) (POST /pir, GET /meta, GET /metrics)",
		srv.Blocks(), srv.BlockSize(), *addr, par.Workers())
	return obs.Run(obs.NewServer(*addr, handler), logger, *grace)
}

// registerPIRMetrics exposes the answering engine's counters: work done by
// the word-parallel kernel and the bounded query log's retention state.
func registerPIRMetrics(reg *obs.Registry, srv *pir.ITServer) {
	reg.Gauge("pir_answers_total", func() float64 { return float64(srv.Answers()) })
	reg.Gauge("pir_words_xored_total", func() float64 { return float64(srv.WordsXORed()) })
	reg.Gauge("pir_query_log_depth", func() float64 {
		retained, _, _ := srv.QueryLogStats()
		return float64(retained)
	})
	reg.Gauge("pir_query_log_dropped_total", func() float64 {
		_, dropped, _ := srv.QueryLogStats()
		return float64(dropped)
	})
	reg.Gauge("pir_query_log_cap", func() float64 {
		_, _, c := srv.QueryLogStats()
		return float64(c)
	})
}

// observeAnswers records the wall-clock of each POST /pir request (the
// answer path, including transport encode/decode) into hist.
func observeAnswers(next http.Handler, hist *obs.Histogram) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/pir" {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		hist.Observe(time.Since(start).Seconds())
	})
}

func fetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	servers := fs.String("servers", "", "comma-separated replica base URLs (≥ 2)")
	index := fs.Int("index", 0, "block index to retrieve")
	seed := fs.Uint64("seed", 1, "query randomness seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls := strings.Split(*servers, ",")
	client, err := pir.NewHTTPClient(urls, nil, *seed)
	if err != nil {
		return err
	}
	block, err := client.Retrieve(*index)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", strings.TrimRight(string(block), "\x00"))
	return nil
}

// Command benchlinkage is the benchmark gate of the parallel analytics
// engine: it times the linkage/MDAV hot paths on a large synthetic dataset
// across worker counts, verifies that every parallel report is
// byte-identical to the workers=1 sequential reference, and writes the
// perf trajectory to a JSON file (BENCH_linkage.json via make bench).
//
//	benchlinkage -rows 50000 -workers 1,2,4,8 -out BENCH_linkage.json
//
// The tool exits non-zero if any parallel run's report differs from the
// sequential one — determinism is a hard gate. Speedup is reported as
// measured; it scales with the physical cores available (see -minspeedup).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"privacy3d/internal/dataset"
	"privacy3d/internal/microagg"
	"privacy3d/internal/noise"
	"privacy3d/internal/par"
	"privacy3d/internal/risk"
)

// Entry is one (kernel, workers) measurement.
type Entry struct {
	Kernel  string `json:"kernel"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Workers int    `json:"workers"`
	NsOp    int64  `json:"ns_op"`
	// SpeedupVsWorkers1 is wall-clock of the workers=1 run divided by this
	// run's, on identical input.
	SpeedupVsWorkers1 float64 `json:"speedup_vs_workers1"`
	// IdenticalToWorkers1 records the byte-identity of this run's report
	// against the sequential reference (always true, or the tool fails).
	IdenticalToWorkers1 bool `json:"identical_to_workers1"`
	// Result is the kernel's headline quantity (linkage rate, disclosure
	// rate, group count) — a drift canary alongside the timing.
	Result float64 `json:"result"`
}

// Report is the BENCH_linkage.json document.
type Report struct {
	Date       string `json:"date"`
	Rows       int    `json:"rows"`
	Seed       uint64 `json:"seed"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Warning flags measurement conditions under which the speedup columns
	// are not meaningful (e.g. a single-CPU machine, where every
	// speedup_vs_workers1 is ≈ 1.0 by construction).
	Warning string  `json:"warning,omitempty"`
	Entries []Entry `json:"entries"`
}

// cpuWarning returns the single-CPU caveat, or "" on multi-core machines.
func cpuWarning() string {
	if runtime.NumCPU() > 1 {
		return ""
	}
	return "single-CPU machine: parallel speedups are ≈ 1.0 by construction and measure scheduling overhead, not scaling"
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchlinkage: ")
	rows := flag.Int("rows", 50000, "synthetic dataset size for the linkage kernels")
	mdavRows := flag.Int("mdav-rows", 20000, "dataset size for the MDAV kernel (capped at -rows)")
	workersList := flag.String("workers", "1,2,4,8", "comma-separated worker counts; must start with 1")
	seed := flag.Uint64("seed", 20070923, "PRNG seed for the synthetic workload")
	out := flag.String("out", "BENCH_linkage.json", "output JSON file")
	minSpeedup := flag.Float64("minspeedup", 0, "fail unless the max-workers DistanceLinkage speedup reaches this (0 = report only)")
	flag.Parse()
	if err := run(*rows, *mdavRows, *workersList, *seed, *out, *minSpeedup); err != nil {
		log.Fatal(err)
	}
}

func parseWorkers(s string) ([]int, error) {
	var ws []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", f)
		}
		ws = append(ws, w)
	}
	if len(ws) == 0 || ws[0] != 1 {
		return nil, fmt.Errorf("-workers must start with 1 (the sequential reference), got %q", s)
	}
	return ws, nil
}

// kernel runs one hot path and returns its report (for byte-identity
// checking) plus a headline number.
type kernel struct {
	name string
	rows int
	cols int
	run  func() (report any, headline float64, err error)
}

func run(rows, mdavRows int, workersList string, seed uint64, out string, minSpeedup float64) error {
	ws, err := parseWorkers(workersList)
	if err != nil {
		return err
	}
	if rows < 1 {
		return fmt.Errorf("-rows must be > 0, got %d", rows)
	}
	if mdavRows > rows {
		mdavRows = rows
	}
	log.Printf("generating %d-row synthetic trial workload (seed %d)", rows, seed)
	d, err := dataset.Synth("trial", rows, seed)
	if err != nil {
		return err
	}
	qi := d.QuasiIdentifiers()
	masked, err := noise.AddUncorrelated(d, qi, 0.2, dataset.NewRand(seed^0xbe7c))
	if err != nil {
		return err
	}
	small := d
	if mdavRows < rows {
		idx := make([]int, mdavRows)
		for i := range idx {
			idx[i] = i
		}
		small = d.Select(idx)
	}
	smallFlat := small.NumericFlat(small.QuasiIdentifiers())

	kernels := []kernel{
		{
			name: "distance_linkage", rows: rows, cols: len(qi),
			run: func() (any, float64, error) {
				rep, err := risk.DistanceLinkage(d, masked, qi)
				return rep, rep.Rate, err
			},
		},
		{
			name: "interval_disclosure", rows: rows, cols: len(qi),
			run: func() (any, float64, error) {
				v, err := risk.IntervalDisclosure(d, masked, qi, 10)
				return v, v, err
			},
		},
		{
			name: "mdav_groups", rows: mdavRows, cols: smallFlat.Cols(),
			run: func() (any, float64, error) {
				groups, err := microagg.MDAVGroupsFlat(smallFlat, 3)
				return groups, float64(len(groups)), err
			},
		},
	}

	report := Report{
		Date: time.Now().UTC().Format(time.RFC3339), Rows: rows, Seed: seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Warning: cpuWarning(),
	}
	if report.Warning != "" {
		log.Printf("WARNING: %s", report.Warning)
	}
	prev := par.SetWorkers(0)
	defer par.SetWorkers(prev)
	var linkageMaxSpeedup float64
	for _, k := range kernels {
		var baseNs int64
		var baseBytes []byte
		for _, w := range ws {
			par.SetWorkers(w)
			start := time.Now()
			rep, headline, err := k.run()
			elapsed := time.Since(start).Nanoseconds()
			if err != nil {
				return fmt.Errorf("%s workers=%d: %w", k.name, w, err)
			}
			repBytes, err := json.Marshal(rep)
			if err != nil {
				return err
			}
			e := Entry{
				Kernel: k.name, Rows: k.rows, Cols: k.cols, Workers: w,
				NsOp: elapsed, Result: headline,
				SpeedupVsWorkers1: 1, IdenticalToWorkers1: true,
			}
			if w == 1 {
				baseNs, baseBytes = elapsed, repBytes
			} else {
				e.SpeedupVsWorkers1 = float64(baseNs) / float64(elapsed)
				e.IdenticalToWorkers1 = string(repBytes) == string(baseBytes)
				if !e.IdenticalToWorkers1 {
					return fmt.Errorf("%s workers=%d: report differs from the sequential reference — determinism gate failed", k.name, w)
				}
			}
			if k.name == "distance_linkage" && e.SpeedupVsWorkers1 > linkageMaxSpeedup {
				linkageMaxSpeedup = e.SpeedupVsWorkers1
			}
			log.Printf("%-20s rows=%-6d workers=%-2d %12s  speedup %.2fx  result %.4f",
				k.name, k.rows, w, time.Duration(elapsed), e.SpeedupVsWorkers1, headline)
			report.Entries = append(report.Entries, e)
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%d entries); all parallel reports byte-identical to sequential", out, len(report.Entries))
	if minSpeedup > 0 && linkageMaxSpeedup < minSpeedup {
		return fmt.Errorf("DistanceLinkage best speedup %.2fx below required %.2fx (GOMAXPROCS=%d — speedup needs physical cores)",
			linkageMaxSpeedup, minSpeedup, runtime.GOMAXPROCS(0))
	}
	return nil
}
